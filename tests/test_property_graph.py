"""Property-based tests for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import connected_components, is_connected
from repro.graph.core import Graph
from repro.graph.shortest_path import NoPathError, dijkstra, shortest_path


@st.composite
def random_graphs(draw):
    """Small random weighted graphs with 2-12 nodes."""
    n = draw(st.integers(2, 12))
    nodes = [f"n{i}" for i in range(n)]
    g = Graph()
    for node in nodes:
        g.add_node(node)
    max_edges = n * (n - 1) // 2
    edge_count = draw(st.integers(0, max_edges))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=edge_count,
            max_size=edge_count,
            unique=True,
        )
    ) if pairs else []
    for i, j in chosen:
        weight = draw(st.floats(0.1, 100.0, allow_nan=False))
        g.add_edge(nodes[i], nodes[j], weight)
    return g


class TestDijkstraProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_distances_satisfy_edge_relaxation(self, g):
        nodes = list(g.nodes())
        dist, _ = dijkstra(g, nodes[0])
        for u, v, w in g.edges():
            if u in dist and v in dist:
                assert dist[v] <= dist[u] + w + 1e-9
                assert dist[u] <= dist[v] + w + 1e-9

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_path_weight_matches_distance(self, g):
        nodes = list(g.nodes())
        source = nodes[0]
        dist, _ = dijkstra(g, source)
        for target in nodes[1:]:
            if target not in dist:
                continue
            path = shortest_path(g, source, target)
            assert abs(g.path_weight(path) - dist[target]) < 1e-9
            assert path[0] == source and path[-1] == target

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry_of_distance(self, g):
        nodes = list(g.nodes())
        a, b = nodes[0], nodes[-1]
        try:
            forward = shortest_path(g, a, b)
        except NoPathError:
            return
        backward = shortest_path(g, b, a)
        assert abs(
            g.path_weight(forward) - g.path_weight(backward)
        ) < 1e-9


class TestComponentProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, g):
        comps = connected_components(g)
        seen = [n for comp in comps for n in comp]
        assert sorted(seen) == sorted(g.nodes())
        assert len(seen) == len(set(seen))

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_reachability_matches_components(self, g):
        comps = connected_components(g)
        labels = {}
        for idx, comp in enumerate(comps):
            for node in comp:
                labels[node] = idx
        nodes = list(g.nodes())
        dist, _ = dijkstra(g, nodes[0])
        for node in nodes:
            if labels[node] == labels[nodes[0]]:
                assert node in dist
            else:
                assert node not in dist

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_is_connected_consistent(self, g):
        assert is_connected(g) == (len(connected_components(g)) == 1)
