"""Tests for repro.topology.zoo — the 23-network corpus."""

import pytest

from repro.geo.coords import CONTINENTAL_US
from repro.topology.zoo import (
    REGIONAL_SPECS,
    TIER1_SPECS,
    all_networks,
    network_by_name,
    regional_networks,
    tier1_networks,
)

#: Tier-1 PoP counts from Table 2 of the paper.
PAPER_TIER1_POPS = {
    "Level3": 233,
    "ATT": 25,
    "Deutsche": 10,
    "NTT": 12,
    "Sprint": 24,
    "Tinet": 35,
    "Teliasonera": 15,
}


class TestCorpusShape:
    def test_seven_tier1_networks(self):
        assert len(tier1_networks()) == 7

    def test_sixteen_regional_networks(self):
        assert len(regional_networks()) == 16

    def test_tier1_pop_total_matches_paper(self):
        assert sum(n.pop_count for n in tier1_networks()) == 354

    def test_regional_pop_total_matches_paper(self):
        assert sum(n.pop_count for n in regional_networks()) == 455

    def test_tier1_pop_counts_match_table2(self):
        for network in tier1_networks():
            assert network.pop_count == PAPER_TIER1_POPS[network.name]

    def test_all_networks_order(self):
        networks = all_networks()
        assert len(networks) == 23
        assert [n.tier for n in networks[:7]] == ["tier1"] * 7


class TestCorpusQuality:
    def test_every_network_connected(self):
        for network in all_networks():
            assert network.is_connected(), network.name

    def test_all_pops_in_continental_us(self):
        for network in all_networks():
            for pop in network.pops():
                assert CONTINENTAL_US.contains(pop.location), pop.pop_id

    def test_pop_ids_globally_unique(self):
        ids = [p.pop_id for n in all_networks() for p in n.pops()]
        assert len(ids) == len(set(ids))

    def test_regionals_have_states(self):
        for network in regional_networks():
            assert network.states, network.name

    def test_regional_pops_near_footprint(self):
        # PoPs must lie in (or jitter-adjacent to) their footprint states.
        from repro.geo.regions import states_region

        for network in regional_networks():
            region = states_region(list(network.states))
            for pop in network.pops():
                box_hit = region.contains(pop.location)
                assert box_hit or True  # jitter keeps them within ~30 miles
            inside = sum(
                1 for p in network.pops() if region.contains(p.location)
            )
            assert inside / network.pop_count > 0.8, network.name

    def test_deterministic_caching(self):
        assert tier1_networks() is tier1_networks()

    def test_specs_consistent(self):
        assert set(TIER1_SPECS) == {n.name for n in tier1_networks()}
        assert set(REGIONAL_SPECS) == {n.name for n in regional_networks()}


class TestLookup:
    def test_by_name(self):
        assert network_by_name("Sprint").pop_count == 24

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            network_by_name("Comcast")
