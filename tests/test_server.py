"""Integration tests for the async query daemon.

Covers the issue's acceptance criteria: concurrent clients get
byte-identical answers to direct :class:`RoutingSession` calls while
coalescing provably occurs; a forecast hot-swap never yields a reply
mixing old and new ``o_f`` (checked via fingerprint tags); admission
control, deadlines, protocol edge cases, and graceful drain.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import RoutingSession
from repro.engine import RoutingEngine, clear_engine_registry
from repro.graph.core import Graph
from repro.risk.model import RiskModel
from repro.server import (
    CoalescingQueue,
    PendingRequest,
    Request,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import pair_to_dict, ratios_to_dict, route_to_dict
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


@pytest.fixture
def diamond_server(diamond_network, diamond_model):
    """A draining ServerThread over the diamond, short linger."""
    thread = ServerThread(
        RoutingSession(diamond_network, diamond_model),
        ServerConfig(batch_linger=0.002),
    )
    host, port = thread.start()
    yield thread, host, port
    thread.stop()


def _raw_connect(host, port):
    sock = socket.create_connection((host, port), timeout=10)
    return sock, sock.makefile("rwb")


class TestBasicOps:
    def test_route_matches_direct_session(self, diamond_server,
                                          diamond_network, diamond_model):
        _, host, port = diamond_server
        expected = route_to_dict(
            RoutingSession(diamond_network, diamond_model).route(
                "diamond:west", "diamond:east"
            )
        )
        with RiskRouteClient(host, port) as client:
            assert client.route("diamond:west", "diamond:east") == expected

    def test_pair_and_ratios_match(self, diamond_server, diamond_network,
                                   diamond_model):
        _, host, port = diamond_server
        session = RoutingSession(diamond_network, diamond_model)
        with RiskRouteClient(host, port) as client:
            assert client.pair("diamond:west", "diamond:east") == pair_to_dict(
                session.pair("diamond:west", "diamond:east")
            )
            assert client.ratios() == ratios_to_dict(session.all_pairs())

    def test_provision(self, diamond_server):
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            recs = client.provision(top=2)["recommendations"]
        assert len(recs) <= 2
        for rec in recs:
            assert rec["fraction_of_baseline"] <= 1.0 + 1e-12

    def test_provision_exact_and_latency_bucket(self, diamond_server):
        # The deprecated exact= client flag still works (as a warning
        # shim mapping to verify_every=1); the wire carries no 'exact'.
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            with pytest.warns(DeprecationWarning):
                client.provision(k=2, exact=True)
            stats = client.stats()
        by_op = stats["latency_by_op"]
        assert by_op["provision"]["count"] == 1
        assert by_op["provision"]["p50_ms"] >= 0.0
        assert by_op["provision"]["p99_ms"] >= by_op["provision"]["p50_ms"]

    def test_provision_rejects_bad_exact_param(self, diamond_server):
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            with pytest.raises(ServerError) as err:
                client.call("provision", k=2, exact="yes")
        assert err.value.code == "bad_request"

    def test_health_and_stats(self, diamond_server):
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["network"] == "diamond"
            assert health["pops"] == 4
            client.route("diamond:west", "diamond:east")
            stats = client.stats()
        assert stats["requests"] >= 2  # route + stats went through the queue
        assert stats["replies"] >= 2
        assert stats["batches"] >= 1
        assert stats["queue_high_water"] >= 1
        assert stats["p50_ms"] >= 0.0
        assert stats["engine"]["cached_sweeps"] >= 1
        assert stats["engine"]["sweeps"]["hits"] >= 1
        assert stats["risk_fingerprint"]

    def test_per_source_strategy(self, diamond_server, diamond_network,
                                 diamond_model):
        _, host, port = diamond_server
        expected = route_to_dict(
            RoutingSession(diamond_network, diamond_model).route(
                "diamond:west", "diamond:east", strategy="per-source"
            )
        )
        with RiskRouteClient(host, port) as client:
            served = client.route(
                "diamond:west", "diamond:east", strategy="per-source"
            )
        assert served == expected


class TestProtocolEdgeCases:
    def test_malformed_json_line(self, diamond_server):
        _, host, port = diamond_server
        sock, stream = _raw_connect(host, port)
        try:
            stream.write(b"this is not json\n")
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
            assert reply["id"] is None
            # The connection survives a malformed line.
            stream.write(b'{"op": "health"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True
        finally:
            sock.close()

    def test_unknown_pop_maps_to_unknown_node(self, diamond_server):
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.route("diamond:atlantis", "diamond:east")
            assert excinfo.value.code == "unknown_node"
            assert "atlantis" in excinfo.value.message
            # Same mapping on the pair op and in update_forecast.
            with pytest.raises(ServerError) as excinfo:
                client.pair("diamond:west", "diamond:atlantis")
            assert excinfo.value.code == "unknown_node"
            with pytest.raises(ServerError) as excinfo:
                client.update_forecast({"diamond:atlantis": 0.5})
            assert excinfo.value.code == "unknown_node"

    def test_no_path_between_components(self):
        graph = Graph()
        for node in ("a", "b", "island"):
            graph.add_node(node)
        graph.add_edge("a", "b", 100.0)
        model = RiskModel(
            shares={"a": 0.4, "b": 0.4, "island": 0.2},
            historical_risk={"a": 0.0, "b": 0.0, "island": 0.0},
            forecast_risk={"a": 0.0, "b": 0.0, "island": 0.0},
        )
        thread = ServerThread(RoutingSession(graph, model))
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.route("a", "island")
                assert excinfo.value.code == "no_path"
        finally:
            thread.stop()

    def test_oversized_line_gets_too_large_then_close(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(max_line_bytes=2048),
        )
        host, port = thread.start()
        try:
            sock, stream = _raw_connect(host, port)
            try:
                stream.write(
                    b'{"op": "route", "source": "'
                    + b"x" * 4096
                    + b'", "target": "y"}\n'
                )
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert reply["error"]["code"] == "too_large"
                # The oversized line cannot be re-framed: EOF follows.
                assert stream.readline() == b""
            finally:
                sock.close()
        finally:
            thread.stop()

    def test_client_disconnect_mid_reply(self, diamond_server):
        _, host, port = diamond_server
        sock, stream = _raw_connect(host, port)
        stream.write(
            b'{"op": "pair", "source": "diamond:west", '
            b'"target": "diamond:east"}\n'
        )
        stream.flush()
        sock.close()  # gone before the worker can answer
        time.sleep(0.1)
        # The daemon must shrug it off and keep serving others.
        with RiskRouteClient(host, port) as client:
            assert client.health()["status"] == "ok"

    def test_bad_params_are_bad_request(self, diamond_server):
        _, host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("route", source=7, target="diamond:east")
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServerError) as excinfo:
                client.call("route", source="diamond:west",
                            target="diamond:east", strategy="fastest")
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServerError) as excinfo:
                client.call("update_forecast", risk=[1, 2])
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServerError) as excinfo:
                client.call("provision", k="many")
            assert excinfo.value.code == "bad_request"


class _Slow:
    """Wrap a service's execute_batch with a fixed delay (on the
    service thread), to hold the worker busy deterministically."""

    def __init__(self, server, delay: float) -> None:
        self._orig = server.service.execute_batch
        self._delay = delay

    def __call__(self, batch):
        time.sleep(self._delay)
        return self._orig(batch)


class TestBackpressure:
    def test_overloaded_when_queue_full(self, diamond_network, diamond_model):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(max_pending=1, request_timeout=0.0),
        )
        host, port = thread.start()
        try:
            thread.server.service.execute_batch = _Slow(thread.server, 0.4)
            line = (
                b'{"op": "route", "source": "diamond:west", '
                b'"target": "diamond:east"}\n'
            )
            s1, f1 = _raw_connect(host, port)
            s2, f2 = _raw_connect(host, port)
            s3, f3 = _raw_connect(host, port)
            try:
                f1.write(line)
                f1.flush()
                time.sleep(0.1)  # worker is now inside the slow batch
                f2.write(line)
                f2.flush()       # fills the 1-deep queue
                time.sleep(0.05)
                f3.write(line)
                f3.flush()       # must bounce
                reply3 = json.loads(f3.readline())
                assert reply3["ok"] is False
                assert reply3["error"]["code"] == "overloaded"
                # The admitted requests still complete.
                assert json.loads(f1.readline())["ok"] is True
                assert json.loads(f2.readline())["ok"] is True
            finally:
                s1.close(), s2.close(), s3.close()
            assert thread.server.stats.overloads == 1
        finally:
            thread.stop()

    def test_deadline_expiry_yields_timeout(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.15),
        )
        host, port = thread.start()
        try:
            thread.server.service.execute_batch = _Slow(thread.server, 0.5)
            line = (
                b'{"op": "route", "source": "diamond:west", '
                b'"target": "diamond:east"}\n'
            )
            s1, f1 = _raw_connect(host, port)
            try:
                f1.write(line)
                f1.flush()
                time.sleep(0.1)  # worker busy; next request will expire
                with RiskRouteClient(host, port, timeout=10) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.route("diamond:west", "diamond:east")
                    assert excinfo.value.code == "timeout"
            finally:
                s1.close()
            assert thread.server.stats.timeouts == 1
        finally:
            thread.stop()

    def test_graceful_drain_serves_admitted_work(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.0),
        )
        host, port = thread.start()
        thread.server.service.execute_batch = _Slow(thread.server, 0.3)
        sock, stream = _raw_connect(host, port)
        try:
            stream.write(
                b'{"id": 42, "op": "pair", "source": "diamond:west", '
                b'"target": "diamond:east"}\n'
            )
            stream.flush()
            time.sleep(0.05)  # ensure admission before the drain begins
            thread.stop(drain=True)  # blocks until the worker drained
            reply = json.loads(stream.readline())
            assert reply["ok"] is True
            assert reply["id"] == 42
        finally:
            sock.close()


class TestConcurrencyCorrectness:
    """The issue's acceptance criterion: 8 concurrent clients, byte-
    identical answers, provable coalescing."""

    N_CLIENTS = 8

    def test_concurrent_clients_match_direct_session(
        self, teliasonera, teliasonera_model
    ):
        pops = teliasonera.pop_ids()
        sources, targets = pops[:4], pops[4:10]
        queries = [(s, t) for s in sources for t in targets]
        # Expected answers from a direct session, computed before any
        # server traffic so nothing races the shared engine.
        session = RoutingSession(teliasonera, teliasonera_model)
        expected_pairs = {
            (s, t): pair_to_dict(session.pair(s, t)) for s, t in queries
        }
        expected_ratios = ratios_to_dict(session.all_pairs())

        thread = ServerThread(
            RoutingSession(teliasonera, teliasonera_model),
            ServerConfig(batch_linger=0.005),
        )
        host, port = thread.start()
        try:
            barrier = threading.Barrier(self.N_CLIENTS)
            failures = []

            def hammer(offset: int) -> None:
                try:
                    with RiskRouteClient(host, port, timeout=60) as client:
                        barrier.wait(timeout=30)
                        # Rotated order: every client starts somewhere
                        # else but they all overlap continuously.
                        plan = queries[offset:] + queries[:offset]
                        for s, t in plan:
                            served = client.pair(s, t)
                            if served != expected_pairs[(s, t)]:
                                failures.append((s, t, served))
                        served_ratios = client.ratios()
                        if served_ratios != expected_ratios:
                            failures.append(("ratios", served_ratios))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(("client-error", repr(exc)))

            workers = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(self.N_CLIENTS)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert not failures, failures[:3]
            with RiskRouteClient(host, port) as client:
                stats = client.stats()
            # 8 clients × 24 overlapping pair queries: the batches must
            # have shared sweeps — the coalescing proof the issue asks.
            assert stats["coalesced_sweeps"] >= 1
            assert stats["replies"] >= self.N_CLIENTS * len(queries)
        finally:
            thread.stop()

    def test_forecast_hot_swap_is_atomic(self, diamond_network):
        network = diamond_network
        graph = network.distance_graph()
        model_old = build_diamond_model()
        # Forecast spike on the north corridor: flips west->east from
        # the north route to the south route.
        of_new = {pop: 0.0 for pop in network.pop_ids()}
        of_new["diamond:north"] = 10.0
        model_new = model_old.with_forecast_risk(of_new)
        # Expected answers and fingerprints from standalone engines
        # (bypassing the shared registry, which the server is using).
        engine_old = RoutingEngine(graph, model_old)
        engine_new = RoutingEngine(graph, model_new)
        expected = {
            engine_old.risk_fingerprint: pair_to_dict(
                engine_old.route_pair("diamond:west", "diamond:east")
            ),
            engine_new.risk_fingerprint: pair_to_dict(
                engine_new.route_pair("diamond:west", "diamond:east")
            ),
        }
        assert len(expected) == 2  # the swap really changes the field
        old_path = expected[engine_old.risk_fingerprint]["riskroute"]["path"]
        new_path = expected[engine_new.risk_fingerprint]["riskroute"]["path"]
        assert "diamond:north" in old_path
        assert "diamond:south" in new_path

        thread = ServerThread(
            RoutingSession(network, model_old),
            ServerConfig(batch_linger=0.002),
        )
        host, port = thread.start()
        try:
            observed = []
            failures = []
            stop_flag = threading.Event()

            def hammer() -> None:
                try:
                    with RiskRouteClient(host, port, timeout=60) as client:
                        while not stop_flag.is_set():
                            served = client.pair(
                                "diamond:west", "diamond:east"
                            )
                            observed.append(
                                (client.last_fingerprint, served)
                            )
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))

            workers = [
                threading.Thread(target=hammer) for _ in range(6)
            ]
            for worker in workers:
                worker.start()
            time.sleep(0.15)  # queries in flight on the old model
            with RiskRouteClient(host, port, timeout=60) as admin:
                result = admin.update_forecast(of_new)
            assert result["changed"] is True
            assert admin.last_fingerprint == engine_new.risk_fingerprint
            time.sleep(0.15)  # queries in flight on the new model
            stop_flag.set()
            for worker in workers:
                worker.join(timeout=60)
            assert not failures, failures[:3]
            assert len(observed) > 20
            fingerprints = {fp for fp, _ in observed}
            # Every reply was computed wholly under one advisory state:
            # its fingerprint names the model, and its payload is that
            # model's exact answer — never a mixture.
            assert fingerprints <= set(expected)
            for fingerprint, payload in observed:
                assert payload == expected[fingerprint]
            # The swap really happened mid-stream.
            assert fingerprints == set(expected)
        finally:
            thread.stop()


class TestCoalescingQueue:
    """Unit tests for batch formation and barriers."""

    @staticmethod
    def _item(op: str) -> PendingRequest:
        return PendingRequest(
            request=Request(op=op), writer=None, arrived=0.0
        )

    def test_bounded_admission(self):
        async def scenario():
            queue = CoalescingQueue(max_pending=2)
            assert await queue.submit(self._item("route")) == "ok"
            assert await queue.submit(self._item("route")) == "ok"
            assert await queue.submit(self._item("route")) == "overloaded"
            await queue.close()
            assert await queue.submit(self._item("route")) == "closed"
            assert queue.high_water == 2

        asyncio.run(scenario())

    def test_control_ops_are_barriers(self):
        async def scenario():
            queue = CoalescingQueue()
            for op in ("route", "pair", "update_forecast", "route"):
                await queue.submit(self._item(op))
            first = await queue.next_batch()
            assert [i.request.op for i in first] == ["route", "pair"]
            second = await queue.next_batch()
            assert [i.request.op for i in second] == ["update_forecast"]
            third = await queue.next_batch()
            assert [i.request.op for i in third] == ["route"]
            await queue.close()
            assert await queue.next_batch() is None

        asyncio.run(scenario())

    def test_linger_widens_the_batch(self):
        async def scenario():
            queue = CoalescingQueue()
            await queue.submit(self._item("route"))

            async def late_join():
                await asyncio.sleep(0.02)
                await queue.submit(self._item("pair"))

            joiner = asyncio.ensure_future(late_join())
            batch = await queue.next_batch(linger=0.2)
            await joiner
            assert [i.request.op for i in batch] == ["route", "pair"]

        asyncio.run(scenario())

    def test_max_batch_cap(self):
        async def scenario():
            queue = CoalescingQueue(max_batch=3)
            for _ in range(5):
                await queue.submit(self._item("route"))
            assert len(await queue.next_batch()) == 3
            assert len(await queue.next_batch()) == 2

        asyncio.run(scenario())


class TestServerStatsUnit:
    """Unit tests for the per-op latency windows."""

    def test_latency_bucketed_by_op(self):
        from repro.server.stats import ServerStats

        stats = ServerStats(latency_window=4)
        stats.observe_latency(0.010, op="route")
        stats.observe_latency(0.030, op="route")
        stats.observe_latency(0.500, op="provision")
        stats.observe_latency(0.001)  # no op: blended window only
        snap = stats.snapshot(queue_depth=0, uptime=1.0)
        by_op = snap["latency_by_op"]
        assert set(by_op) == {"provision", "route"}
        assert by_op["route"]["count"] == 2
        assert by_op["provision"]["count"] == 1
        assert by_op["provision"]["p50_ms"] == pytest.approx(500.0)
        assert by_op["route"]["p50_ms"] == pytest.approx(30.0)
        # The blended histogram still sees every sample.
        assert snap["p99_ms"] == pytest.approx(500.0)

    def test_op_windows_are_bounded(self):
        from repro.server.stats import ServerStats

        stats = ServerStats(latency_window=3)
        for i in range(10):
            stats.observe_latency(float(i), op="ratios")
        snap = stats.snapshot(queue_depth=0, uptime=1.0)
        assert snap["latency_by_op"]["ratios"]["count"] == 3
