"""Replicated read shards: parity, failover, hedging, degraded states.

The replication issue's acceptance tests, over real spawned shard
processes:

* a ``replicas=2`` server's replies are *identical* (payload and
  fingerprint) to the single-process server, whichever replica served
  them — with and without hedging armed;
* a shard killed mid-batch (injected ``shard_exit``) at ``replicas=2``
  yields **zero client-visible errors**: every read is answered
  exactly once, correctly, by the surviving replica (the transparent
  one-hop failover), while ``replicas=1`` keeps today's typed
  ``internal`` errors (see ``test_server_shards.TestShardChaos``);
* when the failover hop dies too (injected ``replica_crash``), the
  reads get typed, retry-safe ``shard_unavailable`` errors — and a
  client under the default :class:`RetryPolicy` rides through the
  respawn window without surfacing anything;
* a stalled shard (injected ``shard_stall``) with ``hedge_ms`` armed
  is raced by a duplicate on the second replica: first reply wins,
  correct payload, no crash accounting, and the loser's late reply is
  drained without confusing later batches or swap barriers;
* forecast swaps stay barriered under replication.

Every server test runs under pytest-timeout so a wedged pipe fails
fast instead of hanging the suite.
"""

from __future__ import annotations

import json
import socket
import time
from itertools import permutations

import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.server import (
    FaultPlane,
    FaultRule,
    RetryPolicy,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import PROTOCOL_VERSION, Request, pair_to_dict
from repro.server.shards import replicas_of
from tests.conftest import build_diamond_model, build_diamond_network

WEST, EAST = "diamond:west", "diamond:east"
POPS = ("diamond:west", "diamond:east", "diamond:north", "diamond:south")


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _session() -> RoutingSession:
    return RoutingSession(build_diamond_network(), build_diamond_model())


def _pair_request(source: str, target: str) -> Request:
    return Request(
        op="pair", id=1, params={"source": source, "target": target},
        v=PROTOCOL_VERSION,
    )


@pytest.mark.timeout(180)
class TestReplicatedParity:
    def test_replicated_replies_match_single_process(self):
        direct = _session()
        expected = {
            (s, t): pair_to_dict(direct.pair(s, t))
            for s, t in permutations(POPS, 2)
        }
        direct_fp = direct.engine.risk_fingerprint
        direct_ratios = None

        def serve_and_collect(**kwargs):
            thread = ServerThread(
                _session(), ServerConfig(batch_linger=0.002, **kwargs)
            )
            host, port = thread.start()
            try:
                with RiskRouteClient(host, port) as client:
                    replies = {
                        (s, t): client.pair(s, t)
                        for s, t in permutations(POPS, 2)
                    }
                    ratios = client.ratios()
                    fingerprint = client.last_fingerprint
            finally:
                thread.stop()
            return replies, ratios, fingerprint

        single = serve_and_collect(shards=0)
        replicated = serve_and_collect(shards=2, replicas=2)
        hedged = serve_and_collect(shards=2, replicas=2, hedge_ms=25.0)
        assert replicated == single
        assert hedged == single
        assert replicated[0] == expected
        assert replicated[2] == direct_fp

    def test_replicated_load_spreads_the_hot_pair(self):
        # The celebrity-pair property at integration scale: a burst of
        # the *same* pair is split across both of its replicas instead
        # of pinning one shard (power-of-two-choices sees the items
        # already assigned in the batch and balances the remainder).
        thread = ServerThread(
            _session(),
            ServerConfig(batch_linger=0.05, shards=2, replicas=2),
        )
        host, port = thread.start()
        try:
            expected = pair_to_dict(_session().pair(WEST, EAST))
            count = 20
            sock = socket.create_connection((host, port), timeout=60)
            stream = sock.makefile("rwb")
            for i in range(count):
                stream.write(json.dumps({
                    "id": i, "op": "pair", "v": 2,
                    "source": WEST, "target": EAST,
                }).encode() + b"\n")
            stream.flush()
            replies = [json.loads(stream.readline()) for _ in range(count)]
            sock.close()
            assert sorted(r["id"] for r in replies) == list(range(count))
            for reply in replies:
                assert reply["ok"] and reply["result"] == expected
            with RiskRouteClient(host, port) as client:
                stats = client.stats()
        finally:
            thread.stop()
        batches = [
            entry["batches"] for entry in stats["shards"]["per_shard"]
        ]
        # Both replicas served a slice of the hot-pair burst (strict
        # single-owner affinity would leave one shard at zero batches,
        # as the replicas=1 stats test pins).
        assert all(served > 0 for served in batches), batches

    def test_stats_and_health_expose_replication(self):
        thread = ServerThread(
            _session(),
            ServerConfig(batch_linger=0.002, shards=2, replicas=2),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                client.pair(WEST, EAST)
                stats = client.stats()
                health = client.health()
        finally:
            thread.stop()
        assert health["shards"] == {"count": 2, "alive": 2, "replicas": 2}
        shards = stats["shards"]
        assert shards["replicas"] == 2
        assert shards["hedge_ms"] == 0.0
        assert shards["crashes"] == 0
        assert shards["failovers"] == 0
        assert shards["unavailable"] == 0
        assert all(
            entry["load"] == 0 for entry in shards["per_shard"]
        )
        assert stats["read_failovers"] == 0
        assert stats["hedged_reads"] == 0


@pytest.mark.timeout(180)
class TestTransparentFailover:
    def test_mid_batch_crash_is_invisible_to_read_clients(self):
        """The headline acceptance test: SIGKILL-equivalent loss of a
        shard mid-batch at replicas=2 produces zero error replies —
        every read is answered exactly once by the surviving replica.
        """
        plane = FaultPlane([FaultRule("shard_exit", hits=(1,))])
        thread = ServerThread(
            _session(),
            ServerConfig(
                batch_linger=0.05, shards=2, replicas=2, faults=plane
            ),
        )
        host, port = thread.start()
        try:
            requests = {
                i: (s, t)
                for i, (s, t) in enumerate(permutations(POPS, 2))
            }
            # Pipeline everything in one flush so the requests form one
            # batch spanning both shards; the first shard sent to dies
            # holding its whole group.
            sock = socket.create_connection((host, port), timeout=60)
            stream = sock.makefile("rwb")
            for i, (s, t) in requests.items():
                stream.write(json.dumps({
                    "id": i, "op": "pair", "v": 2,
                    "source": s, "target": t,
                }).encode() + b"\n")
            stream.flush()
            replies = [json.loads(stream.readline()) for _ in requests]
            sock.close()

            # Exactly one reply per request id — and every one of them
            # ok: the dead shard's reads were re-dispatched, not failed.
            assert sorted(r["id"] for r in replies) == sorted(requests)
            assert [r for r in replies if not r["ok"]] == []
            reference = _session()
            for reply in replies:
                s, t = requests[reply["id"]]
                assert reply["result"] == pair_to_dict(reference.pair(s, t))

            with RiskRouteClient(host, port) as client:
                # The crash still surfaces operationally: degraded
                # health (a shard was lost), crash/restart accounting,
                # and the failover counter — then a clean batch heals.
                health = client.health()
                assert health["status"] == "degraded"
                assert "shard" in health["degraded_reason"]
                client.pair(WEST, EAST)
                health = client.health()
                assert health["status"] == "ok"
                assert health["shards"]["alive"] == 2
                stats = client.stats()
            assert stats["shards"]["crashes"] == 1
            assert stats["shards"]["restarts"] == 1
            assert stats["shards"]["failovers"] >= 1
            assert stats["shards"]["unavailable"] == 0
            assert stats["read_failovers"] >= 1
            assert plane.fires["shard_exit"] == 1
        finally:
            thread.stop()

    def test_both_replicas_down_is_typed_and_retry_safe(self):
        """One hop only: when the failover target dies too, the read
        gets a typed ``shard_unavailable`` (never ``internal``, never a
        hang) — and the default RetryPolicy rides through the respawn.
        """
        plane = FaultPlane([
            FaultRule("shard_exit", hits=(1,)),
            FaultRule("replica_crash", hits=(1,)),
        ])
        thread = ServerThread(
            _session(),
            ServerConfig(
                batch_linger=0.002, shards=2, replicas=2, faults=plane
            ),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                with pytest.raises(ServerError) as err:
                    client.pair(WEST, EAST)
                assert err.value.code == "shard_unavailable"
                # Both shards were respawned synchronously before the
                # error reply went out: a bare retry succeeds.
                expected = pair_to_dict(_session().pair(WEST, EAST))
                assert client.pair(WEST, EAST) == expected
                stats = client.stats()
            assert stats["shards"]["crashes"] == 2
            assert stats["shards"]["unavailable"] >= 1
            assert plane.fires["shard_exit"] == 1
            assert plane.fires["replica_crash"] == 1

            # The same window under the default retry policy:
            # invisible.  (The second server's replica_crash site has
            # never been visited, so its first visit — the failover
            # send of the second query — is the one that fires.)
            plane2 = FaultPlane([
                FaultRule("shard_exit", hits=(2,)),
                FaultRule("replica_crash", hits=(1,)),
            ])
        finally:
            thread.stop()

        thread = ServerThread(
            _session(),
            ServerConfig(
                batch_linger=0.002, shards=2, replicas=2, faults=plane2
            ),
        )
        host, port = thread.start()
        try:
            policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0)
            assert "shard_unavailable" in policy.retry_codes
            with RiskRouteClient(host, port, retry=policy) as client:
                expected = pair_to_dict(_session().pair(WEST, EAST))
                assert client.pair(WEST, EAST) == expected  # hit 1: clean
                # Hit 2 on both sites: primary dies, failover dies,
                # shard_unavailable goes out — and the policy retries
                # against the respawned pool without surfacing it.
                assert client.pair(WEST, EAST) == expected
            assert plane2.fires["shard_exit"] == 1
            assert plane2.fires["replica_crash"] == 1
        finally:
            thread.stop()

    def test_write_ops_keep_fail_fast_semantics(self):
        # Failover is a read-only privilege: update_forecast is applied
        # by the parent and barriered; a shard lost during the barrier
        # is respawned warm, and the swap still lands everywhere.
        plane = FaultPlane([FaultRule("shard_exit", hits=(1,))])
        thread = ServerThread(
            _session(),
            ServerConfig(
                batch_linger=0.002, shards=2, replicas=2, faults=plane
            ),
        )
        host, port = thread.start()
        forecast = {WEST: 0.4}
        try:
            with RiskRouteClient(host, port) as client:
                # The first read batch loses a shard -> failover, ok.
                client.pair(WEST, EAST)
                swap = client.update_forecast(forecast)
                assert swap["changed"] is True
                post = client.pair(WEST, EAST)
                post_fp = client.last_fingerprint
                stats = client.stats()
        finally:
            thread.stop()
        assert stats["shards"]["fingerprint"] == post_fp
        reference = _session()
        full = {pop: 0.0 for pop in POPS}
        full.update(forecast)
        reference.update_forecast(full)
        assert post == pair_to_dict(reference.pair(WEST, EAST))
        assert reference.engine.risk_fingerprint == post_fp


@pytest.mark.timeout(180)
class TestHedgedReads:
    def test_stalled_shard_is_raced_and_loses(self):
        stall = 2.0
        plane = FaultPlane([
            FaultRule("shard_stall", hits=(1,), delay=stall)
        ])
        thread = ServerThread(
            _session(),
            ServerConfig(
                batch_linger=0.002, shards=2, replicas=2,
                hedge_ms=40.0, faults=plane,
            ),
        )
        host, port = thread.start()
        try:
            expected = pair_to_dict(_session().pair(WEST, EAST))
            with RiskRouteClient(host, port) as client:
                started = time.monotonic()
                first = client.pair(WEST, EAST)
                elapsed = time.monotonic() - started
                # The hedge answered long before the stalled primary
                # woke up — and with the right payload.
                assert first == expected
                assert elapsed < stall * 0.75, elapsed
                # The loser's late reply must not poison later reads:
                # keep querying past the stall window.
                deadline = time.monotonic() + stall + 1.0
                while time.monotonic() < deadline:
                    assert client.pair(WEST, EAST) == expected
                    time.sleep(0.05)
                stats = client.stats()
                health = client.health()
        finally:
            thread.stop()
        assert health["status"] == "ok"  # a stall is not a crash
        assert stats["shards"]["crashes"] == 0
        assert stats["shards"]["hedges"] >= 1
        assert stats["shards"]["hedge_wins"] >= 1
        assert stats["hedged_reads"] >= 1
        assert stats["hedge_wins"] >= 1
        assert stats["errors"] == 0
        assert plane.fires["shard_stall"] == 1

    def test_hedging_off_by_default(self):
        thread = ServerThread(
            _session(),
            ServerConfig(batch_linger=0.002, shards=2, replicas=2),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                for _ in range(10):
                    client.pair(WEST, EAST)
                stats = client.stats()
        finally:
            thread.stop()
        assert stats["shards"]["hedges"] == 0
        assert stats["hedged_reads"] == 0


@pytest.mark.timeout(180)
class TestSwapBarrierUnderReplication:
    def test_swap_lands_on_every_replica(self):
        thread = ServerThread(
            _session(),
            ServerConfig(batch_linger=0.002, shards=3, replicas=2),
        )
        host, port = thread.start()
        forecast = {WEST: 0.7, "diamond:south": 0.2}
        try:
            with RiskRouteClient(host, port) as client:
                pre = client.pair(WEST, EAST)
                pre_fp = client.last_fingerprint
                swap = client.update_forecast(forecast)
                assert swap["changed"] is True
                # Hammer every pair after the barrier: whichever
                # replica answers must be on the new field.
                posts = {
                    (s, t): client.pair(s, t)
                    for s, t in permutations(POPS, 2)
                }
                post_fp = client.last_fingerprint
                stats = client.stats()
        finally:
            thread.stop()
        assert post_fp != pre_fp
        assert stats["shards"]["fingerprint"] == post_fp
        reference = _session()
        assert pre == pair_to_dict(reference.pair(WEST, EAST))
        full = {pop: 0.0 for pop in POPS}
        full.update(forecast)
        reference.update_forecast(full)
        for (s, t), payload in posts.items():
            assert payload == pair_to_dict(reference.pair(s, t))
        # Every live shard acked the barrier (swaps counted per shard).
        for entry in stats["shards"]["per_shard"]:
            assert entry is not None and entry["swaps"] == 1

    def test_placement_is_replica_wide(self):
        # The wire-level guarantee the parity tests rest on: every
        # request's replica set under the served shard count is the
        # placement the pool actually used (sanity-pin the helper
        # against a live config).
        request = _pair_request(WEST, EAST)
        assert len(set(replicas_of(request, 3, 2))) == 2
