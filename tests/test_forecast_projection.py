"""Tests for repro.forecast.projection."""

from datetime import datetime

import pytest

from repro.forecast.advisory import Advisory
from repro.forecast.projection import (
    CONE_GROWTH_MILES_PER_HOUR,
    AnticipatoryRiskField,
    anticipatory_snapshots,
    project_advisory,
)
from repro.geo.coords import GeoPoint
from repro.geo.distance import destination_point, haversine_miles


def moving_storm(speed=15.0, bearing=0.0) -> Advisory:
    return Advisory(
        storm_name="Test",
        number=10,
        time=datetime(2012, 10, 28, 11, 0),
        center=GeoPoint(32.0, -75.0),
        max_wind_mph=90.0,
        hurricane_radius_miles=80.0,
        tropical_radius_miles=220.0,
        motion_bearing_degrees=bearing,
        motion_speed_mph=speed,
    )


class TestProjection:
    def test_centers_advance_along_bearing(self):
        advisory = moving_storm(speed=15.0, bearing=0.0)
        projections = project_advisory(advisory, leads_hours=(12.0, 24.0))
        d12 = haversine_miles(advisory.center, projections[0].center)
        d24 = haversine_miles(advisory.center, projections[1].center)
        assert d12 == pytest.approx(15.0 * 12, rel=1e-3)
        assert d24 == pytest.approx(15.0 * 24, rel=1e-3)
        assert projections[1].center.lat > projections[0].center.lat

    def test_cone_grows_with_lead(self):
        projections = project_advisory(moving_storm(), leads_hours=(12.0, 48.0))
        assert projections[0].cone_radius_miles == pytest.approx(
            CONE_GROWTH_MILES_PER_HOUR * 12
        )
        assert projections[1].cone_radius_miles > projections[0].cone_radius_miles

    def test_stationary_storm(self):
        projections = project_advisory(
            moving_storm(speed=0.0), leads_hours=(24.0,)
        )
        assert projections[0].center == moving_storm().center

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError):
            project_advisory(moving_storm(), leads_hours=(-1.0,))

    def test_threatened_radius_includes_cone(self):
        projection = project_advisory(moving_storm(), leads_hours=(48.0,))[0]
        assert projection.threatened_radius_miles == pytest.approx(
            220.0 + CONE_GROWTH_MILES_PER_HOUR * 48
        )


class TestAnticipatorySnapshots:
    def test_current_field_full_weight(self):
        pairs = anticipatory_snapshots(moving_storm())
        assert pairs[0][0] == 1.0
        assert pairs[0][1].center == moving_storm().center

    def test_weights_decay_with_lead(self):
        pairs = anticipatory_snapshots(
            moving_storm(), leads_hours=(12.0, 24.0, 48.0)
        )
        weights = [w for w, _ in pairs[1:]]
        assert weights == sorted(weights, reverse=True)
        assert all(0.0 < w < 1.0 for w in weights)

    def test_far_leads_dropped(self):
        pairs = anticipatory_snapshots(moving_storm(), leads_hours=(1000.0,))
        assert len(pairs) == 1  # only the current field survives


class TestAnticipatoryRiskField:
    def test_prices_future_path(self):
        """A point 300 miles downtrack (outside today's winds) carries
        anticipatory risk."""
        advisory = moving_storm(speed=15.0, bearing=0.0)
        field = AnticipatoryRiskField(advisory, leads_hours=(24.0,))
        downtrack = destination_point(advisory.center, 0.0, 360.0)
        reactive = advisory.tropical_radius_miles
        assert haversine_miles(advisory.center, downtrack) > reactive
        assert field.risk_at(downtrack) > 0.0

    def test_current_risk_undiscounted(self):
        advisory = moving_storm()
        field = AnticipatoryRiskField(advisory)
        assert field.risk_at(advisory.center) == pytest.approx(100.0)

    def test_untouched_areas_zero(self):
        field = AnticipatoryRiskField(moving_storm())
        assert field.risk_at(GeoPoint(47.0, -120.0)) == 0.0

    def test_pop_risks_and_threatened(self, diamond_network):
        # A storm south of the diamond heading north threatens it.
        advisory = Advisory(
            storm_name="Test",
            number=1,
            time=datetime(2012, 10, 28, 11, 0),
            center=GeoPoint(32.0, -95.0),
            max_wind_mph=90.0,
            hurricane_radius_miles=60.0,
            tropical_radius_miles=150.0,
            motion_bearing_degrees=0.0,
            motion_speed_mph=14.0,
        )
        reactive_risks = {
            pop.pop_id
            for pop in diamond_network.pops()
            if haversine_miles(pop.location, advisory.center) <= 150.0
        }
        field = AnticipatoryRiskField(advisory, leads_hours=(24.0,))
        threatened = set(field.pops_threatened(diamond_network))
        assert threatened >= reactive_risks
        assert "diamond:south" in threatened  # in the projected path
        risks = field.pop_risks(diamond_network)
        assert set(risks) == {p.pop_id for p in diamond_network.pops()}
