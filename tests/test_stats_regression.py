"""Tests for repro.stats.regression."""

import pytest

from repro.stats.regression import (
    linear_regression,
    pearson_correlation,
    r_squared,
)


class TestLinearRegression:
    def test_perfect_line(self):
        fit = linear_regression([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_intercept(self):
        fit = linear_regression([0.0, 1.0], [5.0, 7.0])
        assert fit.intercept == pytest.approx(5.0)
        assert fit.predict(2.0) == pytest.approx(9.0)

    def test_no_trend_low_r2(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0]
        fit = linear_regression(x, y)
        assert fit.r_squared < 0.2

    def test_constant_x(self):
        fit = linear_regression([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_regression([1.0], [1.0, 2.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_regression([1.0], [1.0])


class TestRSquared:
    def test_perfect_prediction(self):
        assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_mean_prediction_zero(self):
        obs = [1.0, 2.0, 3.0]
        assert r_squared(obs, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_clamped_at_zero(self):
        # Worse than the mean predictor: clamp instead of negative.
        assert r_squared([1.0, 2.0, 3.0], [30.0, -10.0, 50.0]) == 0.0

    def test_constant_observations(self):
        assert r_squared([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            r_squared([], [])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_vector_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_relation_to_r_squared(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.1, 1.9, 3.2, 3.8]
        rho = pearson_correlation(x, y)
        fit = linear_regression(x, y)
        assert rho**2 == pytest.approx(fit.r_squared, rel=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [2.0])
