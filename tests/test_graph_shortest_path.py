"""Tests for repro.graph.shortest_path."""

import pytest

from repro.graph.core import Graph, NodeNotFoundError
from repro.graph.shortest_path import (
    NoPathError,
    all_pairs_shortest_paths,
    dijkstra,
    reconstruct_path,
    shortest_path,
    shortest_path_length,
)


def grid_graph() -> Graph:
    """A 2x3 grid with unit weights plus a heavy shortcut."""
    g = Graph()
    edges = [
        ("a", "b", 1.0), ("b", "c", 1.0),
        ("d", "e", 1.0), ("e", "f", 1.0),
        ("a", "d", 1.0), ("b", "e", 1.0), ("c", "f", 1.0),
        ("a", "f", 10.0),
    ]
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


class TestDijkstra:
    def test_distances(self):
        dist, _ = dijkstra(grid_graph(), "a")
        assert dist["a"] == 0.0
        assert dist["c"] == 2.0
        assert dist["f"] == 3.0  # not the 10.0 shortcut

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            dijkstra(grid_graph(), "zzz")

    def test_unknown_target(self):
        with pytest.raises(NodeNotFoundError):
            dijkstra(grid_graph(), "a", target="zzz")

    def test_early_exit_settles_target(self):
        dist, parent = dijkstra(grid_graph(), "a", target="b")
        assert dist["b"] == 1.0
        assert reconstruct_path(parent, "a", "b") == ["a", "b"]

    def test_disconnected_component_not_reached(self):
        g = grid_graph()
        g.add_node("island")
        dist, _ = dijkstra(g, "a")
        assert "island" not in dist


class TestShortestPath:
    def test_path_endpoints(self):
        path = shortest_path(grid_graph(), "a", "f")
        assert path[0] == "a"
        assert path[-1] == "f"
        assert grid_graph().path_weight(path) == pytest.approx(3.0)

    def test_trivial_path(self):
        assert shortest_path(grid_graph(), "a", "a") == ["a"]

    def test_no_path_raises(self):
        g = grid_graph()
        g.add_node("island")
        with pytest.raises(NoPathError):
            shortest_path(g, "a", "island")

    def test_length_only(self):
        assert shortest_path_length(grid_graph(), "a", "f") == pytest.approx(3.0)

    def test_length_no_path(self):
        g = grid_graph()
        g.add_node("island")
        with pytest.raises(NoPathError):
            shortest_path_length(g, "a", "island")

    def test_deterministic_tie_break(self):
        # Two equal-cost routes a->b->d and a->c->d: first-inserted wins.
        g = Graph.from_edges(
            [("a", "b", 1.0), ("b", "d", 1.0), ("a", "c", 1.0), ("c", "d", 1.0)]
        )
        assert shortest_path(g, "a", "d") == ["a", "b", "d"]


class TestAllPairs:
    def test_covers_every_source(self):
        sweeps = all_pairs_shortest_paths(grid_graph())
        assert set(sweeps) == {"a", "b", "c", "d", "e", "f"}

    def test_symmetric_distances(self):
        sweeps = all_pairs_shortest_paths(grid_graph())
        assert sweeps["a"][0]["f"] == pytest.approx(sweeps["f"][0]["a"])


class TestAllPairsViaSession:
    """Satellite: all_pairs routed through the engine's batched sweeps."""

    def _session(self, network):
        from repro.session import RoutingSession

        return RoutingSession(network)

    def test_matches_naive_bitwise(self, diamond_network):
        session = self._session(diamond_network)
        graph = diamond_network.distance_graph()
        naive = all_pairs_shortest_paths(graph)
        routed = all_pairs_shortest_paths(graph, session=session)
        assert set(routed) == set(naive)
        for source in naive:
            # Distances bit-identical (same float ops in path order);
            # reached sets identical.
            assert routed[source][0] == naive[source][0]
            assert set(routed[source][1]) == set(naive[source][1])

    def test_mismatched_session_falls_back(self, diamond_network):
        session = self._session(diamond_network)
        other = grid_graph()
        routed = all_pairs_shortest_paths(other, session=session)
        assert routed == all_pairs_shortest_paths(other)

    def test_sessionless_object_falls_back(self):
        g = grid_graph()
        assert all_pairs_shortest_paths(g, session=object()) == (
            all_pairs_shortest_paths(g)
        )


class TestReconstructPath:
    def test_missing_target(self):
        with pytest.raises(NoPathError):
            reconstruct_path({}, "a", "b")

    def test_same_node(self):
        assert reconstruct_path({}, "a", "a") == ["a"]
