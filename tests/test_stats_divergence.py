"""Tests for repro.stats.divergence."""

import math

import pytest

from repro.stats.divergence import (
    empirical_kl_from_loglik,
    jensen_shannon_discrete,
    kl_divergence_discrete,
)


class TestKLDiscrete:
    def test_identical_distributions_zero(self):
        p = [0.25, 0.25, 0.5]
        assert kl_divergence_discrete(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = [0.5, 0.5]
        q = [0.9, 0.1]
        expected = 0.5 * math.log(0.5 / 0.9) + 0.5 * math.log(0.5 / 0.1)
        assert kl_divergence_discrete(p, q) == pytest.approx(expected)

    def test_asymmetry(self):
        p = [0.5, 0.5]
        q = [0.9, 0.1]
        assert kl_divergence_discrete(p, q) != pytest.approx(
            kl_divergence_discrete(q, p)
        )

    def test_zero_in_p_ignored(self):
        assert kl_divergence_discrete([0.0, 1.0], [0.5, 0.5]) == pytest.approx(
            math.log(2.0)
        )

    def test_zero_in_q_infinite(self):
        assert kl_divergence_discrete([0.5, 0.5], [1.0, 0.0]) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence_discrete([1.0], [0.5, 0.5])

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence_discrete([0.5, 0.2], [0.5, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence_discrete([-0.5, 1.5], [0.5, 0.5])


class TestEmpiricalKL:
    def test_negative_mean_loglik(self):
        assert empirical_kl_from_loglik([-2.0, -4.0]) == pytest.approx(3.0)

    def test_better_fit_scores_lower(self):
        good = empirical_kl_from_loglik([-1.0, -1.0])
        bad = empirical_kl_from_loglik([-5.0, -5.0])
        assert good < bad

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_kl_from_loglik([])


class TestJensenShannon:
    def test_identical_is_zero(self):
        p = [0.3, 0.7]
        assert jensen_shannon_discrete(p, p) == pytest.approx(0.0)

    def test_symmetric(self):
        p = [0.9, 0.1]
        q = [0.2, 0.8]
        assert jensen_shannon_discrete(p, q) == pytest.approx(
            jensen_shannon_discrete(q, p)
        )

    def test_bounded_by_ln2(self):
        assert jensen_shannon_discrete([1.0, 0.0], [0.0, 1.0]) == pytest.approx(
            math.log(2.0)
        )

    def test_finite_with_disjoint_support(self):
        value = jensen_shannon_discrete([1.0, 0.0], [0.0, 1.0])
        assert math.isfinite(value)
