"""Tests for repro.core.multiobjective."""

import pytest

from repro.core.bitrisk import path_metrics
from repro.core.multiobjective import (
    LatencyModel,
    composite_route,
    pareto_paths,
)
from repro.core.riskroute import RiskRouter
from repro.graph.shortest_path import NoPathError
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture
def world(diamond_network, diamond_model):
    return diamond_network.distance_graph(), diamond_model


class TestLatencyModel:
    def test_propagation(self):
        model = LatencyModel(fiber_miles_per_ms=124.0, per_hop_ms=0.0)
        assert model.path_latency_ms(1240.0, 3) == pytest.approx(10.0)

    def test_per_hop_budget(self):
        model = LatencyModel(fiber_miles_per_ms=124.0, per_hop_ms=0.5)
        assert model.path_latency_ms(0.0, 4) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(fiber_miles_per_ms=0.0)
        with pytest.raises(ValueError):
            LatencyModel(per_hop_ms=-1.0)
        with pytest.raises(ValueError):
            LatencyModel().path_latency_ms(-1.0, 0)


class TestParetoPaths:
    def test_frontier_endpoints(self, world):
        graph, model = world
        frontier = pareto_paths(graph, model, "diamond:west", "diamond:east")
        assert len(frontier) >= 2
        # First entry: geographic shortest; last: minimum risk.
        distances = [p.distance_miles for p in frontier]
        risks = [p.risk_sum for p in frontier]
        assert distances == sorted(distances)
        assert risks == sorted(risks, reverse=True)

    def test_no_dominated_entries(self, world):
        graph, model = world
        frontier = pareto_paths(graph, model, "diamond:west", "diamond:east")
        for i, a in enumerate(frontier):
            for b in frontier[i + 1 :]:
                dominates = (
                    a.distance_miles <= b.distance_miles
                    and a.risk_sum <= b.risk_sum
                )
                assert not dominates

    def test_contains_both_extremes(self, world):
        graph, model = world
        router = RiskRouter(graph, model)
        frontier = pareto_paths(graph, model, "diamond:west", "diamond:east")
        shortest = router.shortest_path("diamond:west", "diamond:east")
        assert frontier[0].distance_miles == pytest.approx(shortest.bit_miles)
        risky = router.risk_route("diamond:west", "diamond:east")
        best_risk = min(p.risk_sum for p in frontier)
        assert path_metrics(graph, list(risky.path), model).risk_sum >= (
            best_risk - 1e-9
        )

    def test_bit_risk_evaluation(self, world):
        graph, model = world
        frontier = pareto_paths(graph, model, "diamond:west", "diamond:east")
        for entry in frontier:
            metrics = path_metrics(graph, list(entry.path), model)
            alpha = metrics.alpha
            assert entry.bit_risk_miles(alpha) == pytest.approx(
                metrics.bit_risk_miles
            )

    def test_every_gamma_optimum_on_frontier(self, diamond_network):
        """For any gamma, the RiskRoute optimum must be a frontier point."""
        graph = diamond_network.distance_graph()
        for gamma in (0.0, 1e4, 1e5, 1e6, 1e7):
            model = build_diamond_model(gamma_h=gamma)
            frontier = pareto_paths(
                graph, model, "diamond:west", "diamond:east"
            )
            optimum = RiskRouter(graph, model).risk_route(
                "diamond:west", "diamond:east"
            )
            assert optimum.path in [p.path for p in frontier]

    def test_unknown_node(self, world):
        graph, model = world
        from repro.graph.core import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            pareto_paths(graph, model, "diamond:west", "nowhere")

    def test_disconnected(self, world):
        graph, model = world
        work = graph.copy()
        work.remove_edge("diamond:west", "diamond:north")
        work.remove_edge("diamond:west", "diamond:south")
        with pytest.raises(NoPathError):
            pareto_paths(work, model, "diamond:west", "diamond:east")


class TestCompositeRoute:
    def test_extremes(self, world):
        graph, model = world
        router = RiskRouter(graph, model)
        pure_sla = composite_route(
            graph, model, "diamond:west", "diamond:east", sla_weight=1.0
        )
        pure_risk = composite_route(
            graph, model, "diamond:west", "diamond:east", sla_weight=0.0
        )
        assert pure_sla.bit_miles <= pure_risk.bit_miles + 1e-6
        assert pure_risk.bit_risk_miles <= pure_sla.bit_risk_miles + 1e-6
        assert pure_risk.path == router.risk_route(
            "diamond:west", "diamond:east"
        ).path

    def test_weight_validation(self, world):
        graph, model = world
        with pytest.raises(ValueError):
            composite_route(
                graph, model, "diamond:west", "diamond:east", sla_weight=1.5
            )

    def test_monotone_in_weight(self, world):
        graph, model = world
        miles = []
        for weight in (0.0, 0.5, 1.0):
            route = composite_route(
                graph, model, "diamond:west", "diamond:east", weight
            )
            miles.append(route.bit_miles)
        assert miles[0] >= miles[-1] - 1e-6
