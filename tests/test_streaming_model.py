"""StreamingHistoricalModel: ingest, dedup, window slides, parity.

Small hand-built catalogs (two classes, explicit bandwidths) keep these
fast while pinning the issue's model-level contracts:

* duplicate delivery is safe — re-ingesting a record (same identity) is
  a no-op, for at-least-once upstream pipelines;
* a rolling ``window_years`` retires events crossing the trailing edge
  and drops too-old incoming records as stale;
* after any ingest sequence, ``pop_risks`` and the model fingerprint
  equal those of a model rebuilt from scratch over the surviving
  events — streaming never forks the cache-key space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disasters.events import DisasterCatalog, DisasterEvent, EventType
from repro.geo.coords import GeoPoint
from repro.risk.streaming import StreamingHistoricalModel
from tests.conftest import build_diamond_network

HURRICANE = EventType.FEMA_HURRICANE
QUAKE = EventType.NOAA_EARTHQUAKE
BANDWIDTHS = {HURRICANE: 60.0, QUAKE: 45.0}


def _event(event_type: str, lat: float, lon: float, year: int) -> DisasterEvent:
    return DisasterEvent(event_type, GeoPoint(lat, lon), year)


def _seed_events():
    return {
        HURRICANE: [
            _event(HURRICANE, 29.9, -90.1, 2001),
            _event(HURRICANE, 27.9, -97.4, 2002),
            _event(HURRICANE, 30.4, -89.1, 2003),
        ],
        QUAKE: [
            _event(QUAKE, 37.8, -122.4, 2000),
            _event(QUAKE, 34.1, -118.2, 2002),
            _event(QUAKE, 36.0, -117.7, 2004),
        ],
    }


def _build(events=None, window_years=None) -> StreamingHistoricalModel:
    events = _seed_events() if events is None else events
    return StreamingHistoricalModel(
        {et: DisasterCatalog(batch) for et, batch in events.items()},
        bandwidths=BANDWIDTHS,
        window_years=window_years,
        cache=None,
    )


class TestIngest:
    def test_append_matches_rebuild(self):
        network = build_diamond_network()
        model = _build()
        model.pop_risks(network)  # warm the tracked point set
        fresh = [
            _event(HURRICANE, 29.95, -90.07, 2005),
            _event(QUAKE, 36.1, -120.0, 2004),
        ]
        delta = model.ingest(fresh)
        assert delta.changed
        assert delta.appended == 2
        assert delta.duplicates == 0 and delta.retired == 0
        assert delta.touched_types == (HURRICANE, QUAKE)

        seeds = _seed_events()
        seeds[HURRICANE].append(fresh[0])
        seeds[QUAKE].append(fresh[1])
        oracle = _build(seeds)
        assert model.fingerprint == oracle.fingerprint
        incremental = model.pop_risks(network)
        rebuilt = oracle.pop_risks(network)
        assert set(incremental) == set(rebuilt)
        for pop_id in incremental:
            assert incremental[pop_id] == rebuilt[pop_id]

    def test_duplicate_records_are_dropped(self):
        """Regression: at-least-once delivery cannot double-count."""
        network = build_diamond_network()
        model = _build()
        fresh = [_event(HURRICANE, 29.95, -90.07, 2005)]
        model.ingest(fresh)
        before_fp = model.fingerprint
        before = model.pop_risks(network)
        redelivered = model.ingest(
            [_event(HURRICANE, 29.95, -90.07, 2005)]
        )
        assert not redelivered.changed
        assert redelivered.appended == 0
        assert redelivered.duplicates == 1
        assert model.fingerprint == before_fp
        assert model.pop_risks(network) == before

    def test_duplicates_within_one_batch(self):
        model = _build()
        record = _event(QUAKE, 35.5, -117.5, 2004)
        delta = model.ingest([record, record])
        assert delta.appended == 1 and delta.duplicates == 1

    def test_identity_membership(self):
        model = _build()
        seeded = _seed_events()[HURRICANE][0]
        assert seeded.identity in model
        fresh = _event(HURRICANE, 25.0, -80.0, 2006)
        assert fresh.identity not in model
        model.ingest([fresh])
        assert fresh.identity in model

    def test_unknown_class_rejected_before_mutation(self):
        model = _build()
        before = model.fingerprint
        counts = model.event_counts()
        with pytest.raises(ValueError):
            model.ingest([
                _event(HURRICANE, 29.0, -90.0, 2006),
                _event(EventType.FEMA_TORNADO, 35.0, -97.0, 2006),
            ])
        assert model.fingerprint == before
        assert model.event_counts() == counts


class TestRollingWindow:
    def test_window_slide_retires_and_matches_rebuild(self):
        network = build_diamond_network()
        model = _build(window_years=5)  # latest 2004 -> keeps >= 2000
        model.pop_risks(network)
        # A 2007 hurricane advances the edge to >= 2003: the 2000-2002
        # events across both classes retire.
        delta = model.ingest([_event(HURRICANE, 28.5, -96.0, 2007)])
        assert delta.appended == 1
        assert delta.retired == 4
        assert model.event_counts() == {HURRICANE: 2, QUAKE: 1}

        survivors = {
            et: [e for e in batch if e.year >= 2003]
            for et, batch in _seed_events().items()
        }
        survivors[HURRICANE].append(_event(HURRICANE, 28.5, -96.0, 2007))
        oracle = _build(survivors)
        assert model.fingerprint == oracle.fingerprint
        incremental = model.pop_risks(network)
        rebuilt = oracle.pop_risks(network)
        for pop_id in incremental:
            np.testing.assert_allclose(
                incremental[pop_id], rebuilt[pop_id], rtol=1e-9
            )

    def test_stale_incoming_records_dropped(self):
        model = _build(window_years=5)
        delta = model.ingest([
            _event(HURRICANE, 28.5, -96.0, 2007),   # advances edge to 2003
            _event(HURRICANE, 29.0, -91.0, 1999),   # behind the new edge
        ])
        assert delta.appended == 1
        assert delta.stale == 1

    def test_now_year_advances_edge_without_events(self):
        model = _build(window_years=5)
        delta = model.ingest(
            [_event(HURRICANE, 28.5, -96.0, 2004)], now_year=2008
        )
        # Edge moves to >= 2004: the 2000-2003 events retire.
        assert delta.appended == 1
        assert delta.retired == 5
        assert model.event_counts() == {HURRICANE: 1, QUAKE: 1}
        assert model.latest_year() == 2004

    def test_slide_that_would_empty_a_class_rejected(self):
        model = _build(window_years=5)
        counts = model.event_counts()
        fingerprint = model.fingerprint
        # now_year=2030 would retire every event of both classes.
        with pytest.raises(ValueError):
            model.ingest(
                [_event(HURRICANE, 28.5, -96.0, 2004)], now_year=2030
            )
        assert model.event_counts() == counts
        assert model.fingerprint == fingerprint

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            _build(window_years=0)


class TestIngestParityProperty:
    year = st.integers(1998, 2010)
    point = st.tuples(
        st.floats(min_value=26.0, max_value=44.0),
        st.floats(min_value=-120.0, max_value=-80.0),
    )

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_random_batches_and_slides_match_rebuild(self, data):
        """pop_risks parity under random ingest sequences (the issue's
        1e-9 rtol pin, model level)."""
        network = build_diamond_network()
        window = data.draw(
            st.one_of(st.none(), st.integers(6, 12)), label="window"
        )
        model = _build(window_years=window)
        model.pop_risks(network)
        survivors = {
            et: list(batch) for et, batch in _seed_events().items()
        }
        for _ in range(data.draw(st.integers(1, 3), label="batches")):
            batch = [
                _event(
                    data.draw(st.sampled_from([HURRICANE, QUAKE])),
                    *data.draw(self.point),
                    data.draw(self.year),
                )
                for _ in range(data.draw(st.integers(1, 4), label="size"))
            ]
            try:
                model.ingest(batch)
            except ValueError:
                continue  # a slide would have emptied a class
            seen = {
                e.identity
                for batch_events in survivors.values()
                for e in batch_events
            }
            for event in batch:
                if event.identity in seen:
                    continue
                seen.add(event.identity)
                survivors[event.event_type].append(event)
            if window is not None:
                latest = max(
                    e.year
                    for batch_events in survivors.values()
                    for e in batch_events
                )
                cutoff = latest - window + 1
                survivors = {
                    et: [e for e in batch_events if e.year >= cutoff]
                    for et, batch_events in survivors.items()
                }
        oracle = _build(survivors, window_years=None)
        assert model.fingerprint == oracle.fingerprint
        incremental = model.pop_risks(network)
        rebuilt = oracle.pop_risks(network)
        for pop_id in incremental:
            np.testing.assert_allclose(
                incremental[pop_id], rebuilt[pop_id], rtol=1e-9
            )
