"""Tests for repro.population (census + assignment)."""

import numpy as np
import pytest

from repro.geo.coords import CONTINENTAL_US, GeoPoint
from repro.geo.regions import states_region
from repro.population.assignment import (
    PopulationAssignment,
    assign_population,
    network_population_shares,
)
from repro.population.census import CensusData, synthetic_census
from repro.topology.network import Network, PoP


def tiny_census() -> CensusData:
    """Five blocks: four near Chicago, one near Denver."""
    lat = np.array([41.9, 41.8, 41.7, 42.0, 39.7])
    lon = np.array([-87.6, -87.7, -87.5, -87.6, -105.0])
    population = np.array([100.0, 100.0, 100.0, 100.0, 400.0])
    return CensusData(lat, lon, population)


def two_pop_network() -> Network:
    net = Network("t")
    net.add_pop(PoP("t:chi", "Chicago", GeoPoint(41.88, -87.63)))
    net.add_pop(PoP("t:den", "Denver", GeoPoint(39.74, -104.98)))
    return net


class TestCensusData:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CensusData(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            CensusData(np.zeros(1), np.zeros(1), np.array([-1.0]))

    def test_totals(self):
        census = tiny_census()
        assert census.block_count == 5
        assert census.total_population == 800.0

    def test_block_materialization(self):
        block = tiny_census().block(4)
        assert block.population == 400.0
        assert block.location.lat == pytest.approx(39.7)

    def test_blocks_iterator(self):
        assert len(list(tiny_census().blocks())) == 5

    def test_restricted_to_region(self):
        census = tiny_census()
        illinois = census.restricted_to(states_region(["IL"]))
        assert illinois.block_count == 4
        assert illinois.total_population == 400.0


class TestSyntheticCensus:
    def test_paper_block_count(self):
        census = synthetic_census()
        assert census.block_count == 215_932

    def test_all_blocks_in_continental_us(self):
        census = synthetic_census()
        assert census.lat.min() >= CONTINENTAL_US.south
        assert census.lat.max() <= CONTINENTAL_US.north
        assert census.lon.min() >= CONTINENTAL_US.west
        assert census.lon.max() <= CONTINENTAL_US.east

    def test_cached(self):
        assert synthetic_census() is synthetic_census()

    def test_big_cities_dominate(self):
        census = synthetic_census()
        nyc_region = census.restricted_to_box(
            type(CONTINENTAL_US)(40.0, -75.0, 41.5, -73.0)
        )
        wyoming = census.restricted_to(states_region(["WY"]))
        assert nyc_region.total_population > wyoming.total_population

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            synthetic_census(seed=1, n_blocks=0)


class TestAssignment:
    def test_shares_sum_to_one(self):
        result = assign_population(tiny_census(), two_pop_network().pops())
        assert sum(result.shares().values()) == pytest.approx(1.0)

    def test_nearest_neighbor_split(self):
        result = assign_population(tiny_census(), two_pop_network().pops())
        assert result.share("t:chi") == pytest.approx(0.5)
        assert result.share("t:den") == pytest.approx(0.5)

    def test_impact_is_share_sum(self):
        result = assign_population(tiny_census(), two_pop_network().pops())
        assert result.impact("t:chi", "t:den") == pytest.approx(1.0)

    def test_population_of(self):
        result = assign_population(tiny_census(), two_pop_network().pops())
        assert result.population_of("t:chi") == pytest.approx(400.0)

    def test_unknown_pop(self):
        result = assign_population(tiny_census(), two_pop_network().pops())
        with pytest.raises(KeyError):
            result.share("t:ghost")

    def test_no_pops_rejected(self):
        with pytest.raises(ValueError):
            assign_population(tiny_census(), [])

    def test_heaviest(self):
        census = tiny_census()
        net = two_pop_network()
        net.add_pop(PoP("t:far", "Far", GeoPoint(47.0, -122.0)))
        result = assign_population(census, net.pops())
        assert result.heaviest(1) in (["t:chi"], ["t:den"])
        assert len(result.heaviest(5)) == 3

    def test_validation_of_shares(self):
        with pytest.raises(ValueError):
            PopulationAssignment({"x": 1.5}, 100.0)
        with pytest.raises(ValueError):
            PopulationAssignment({"x": 0.5}, -1.0)


class TestNetworkShares:
    def test_regional_confined_to_footprint(self, teliasonera):
        census = synthetic_census()
        # Build a small regional net in Texas only.
        net = Network("tex", tier="regional", states=("TX",))
        net.add_pop(PoP("tex:hou", "Houston", GeoPoint(29.76, -95.37)))
        net.add_pop(PoP("tex:dal", "Dallas", GeoPoint(32.78, -96.80)))
        result = network_population_shares(net, census)
        assert sum(result.shares().values()) == pytest.approx(1.0)
        # Texas population is far less than the national total.
        assert result.total_population < census.total_population * 0.2

    def test_tier1_uses_full_population(self, teliasonera):
        census = synthetic_census()
        result = network_population_shares(teliasonera, census)
        assert result.total_population == pytest.approx(
            census.total_population
        )
