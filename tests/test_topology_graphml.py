"""Tests for repro.topology.graphml round-tripping."""

import io

import pytest

from repro.topology.graphml import read_graphml, write_graphml
from repro.topology.zoo import network_by_name

ZOO_SAMPLE = """<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d1"/>
  <key attr.name="Latitude" attr.type="double" for="node" id="d2"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d3"/>
  <key attr.name="Network" attr.type="string" for="graph" id="d0"/>
  <graph edgedefault="undirected">
    <data key="d0">SampleNet</data>
    <node id="0">
      <data key="d1">Madison</data>
      <data key="d2">43.07</data>
      <data key="d3">-89.40</data>
    </node>
    <node id="1">
      <data key="d1">Chicago</data>
      <data key="d2">41.88</data>
      <data key="d3">-87.63</data>
    </node>
    <node id="2">
      <data key="d1">Satellite</data>
    </node>
    <edge source="0" target="1"/>
    <edge source="0" target="2"/>
  </graph>
</graphml>
"""


class TestRead:
    def test_parses_nodes_and_edges(self):
        net = read_graphml(io.StringIO(ZOO_SAMPLE))
        assert net.name == "SampleNet"
        assert net.pop_count == 2  # ungeolocated satellite node dropped
        assert net.link_count == 1

    def test_coordinates(self):
        net = read_graphml(io.StringIO(ZOO_SAMPLE))
        madison = net.pop("SampleNet:Madison")
        assert madison.location.lat == pytest.approx(43.07)

    def test_name_override(self):
        net = read_graphml(io.StringIO(ZOO_SAMPLE), name="Override")
        assert net.name == "Override"
        assert net.has_pop("Override:Madison")

    def test_missing_graph_element(self):
        bad = '<?xml version="1.0"?><graphml xmlns="http://graphml.graphdrawing.org/xmlns"/>'
        with pytest.raises(ValueError):
            read_graphml(io.StringIO(bad))


class TestRoundTrip:
    def test_corpus_network_round_trips(self, tmp_path):
        original = network_by_name("Deutsche")
        path = tmp_path / "deutsche.graphml"
        write_graphml(original, str(path))
        restored = read_graphml(str(path))
        assert restored.pop_count == original.pop_count
        assert restored.link_count == original.link_count
        # Locations survive exactly (repr round-trip).
        for pop in original.pops():
            match = [
                p
                for p in restored.pops()
                if p.location == pop.location
            ]
            assert match, pop.pop_id

    def test_round_trip_preserves_lengths(self, tmp_path):
        original = network_by_name("NTT")
        path = tmp_path / "ntt.graphml"
        write_graphml(original, str(path))
        restored = read_graphml(str(path))
        assert restored.total_link_miles() == pytest.approx(
            original.total_link_miles(), rel=1e-9
        )
