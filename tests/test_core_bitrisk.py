"""Tests for repro.core.bitrisk — Equation 1."""

import pytest

from repro.core.bitrisk import bit_miles, bit_risk_miles, path_metrics
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture
def graph(diamond_network):
    return diamond_network.distance_graph()


class TestPathMetrics:
    def test_empty_path_rejected(self, graph, diamond_model):
        with pytest.raises(ValueError):
            path_metrics(graph, [], diamond_model)

    def test_single_node_path(self, graph, diamond_model):
        metrics = path_metrics(graph, ["diamond:west"], diamond_model)
        assert metrics.distance_miles == 0.0
        assert metrics.risk_sum == 0.0
        assert metrics.bit_risk_miles == 0.0
        assert metrics.alpha == pytest.approx(0.6)  # c_west + c_west

    def test_source_risk_not_charged(self, graph, diamond_model):
        """Equation 1 sums x = 2..K: the source PoP is free."""
        path = ["diamond:west", "diamond:north", "diamond:east"]
        metrics = path_metrics(graph, path, diamond_model)
        expected_risk = diamond_model.node_risk(
            "diamond:north"
        ) + diamond_model.node_risk("diamond:east")
        assert metrics.risk_sum == pytest.approx(expected_risk)

    def test_distance_matches_graph(self, graph, diamond_model):
        path = ["diamond:west", "diamond:north", "diamond:east"]
        metrics = path_metrics(graph, path, diamond_model)
        assert metrics.distance_miles == pytest.approx(graph.path_weight(path))

    def test_alpha_from_endpoints(self, graph, diamond_model):
        path = ["diamond:west", "diamond:north", "diamond:east"]
        metrics = path_metrics(graph, path, diamond_model)
        assert metrics.alpha == pytest.approx(0.6)  # 0.3 + 0.3

    def test_equation1_composition(self, graph, diamond_model):
        path = ["diamond:west", "diamond:south", "diamond:east"]
        metrics = path_metrics(graph, path, diamond_model)
        assert metrics.bit_risk_miles == pytest.approx(
            metrics.distance_miles + metrics.alpha * metrics.risk_sum
        )

    def test_riskier_transit_costs_more(self, graph, diamond_model):
        north = path_metrics(
            graph, ["diamond:west", "diamond:north", "diamond:east"], diamond_model
        )
        south = path_metrics(
            graph, ["diamond:west", "diamond:south", "diamond:east"], diamond_model
        )
        # The south corridor is slightly shorter but far riskier.
        assert south.distance_miles < north.distance_miles
        assert south.bit_risk_miles > north.bit_risk_miles

    def test_with_alpha_rescoring(self, graph, diamond_model):
        path = ["diamond:west", "diamond:north", "diamond:east"]
        metrics = path_metrics(graph, path, diamond_model)
        rescored = metrics.with_alpha(0.0)
        assert rescored.bit_risk_miles == pytest.approx(metrics.distance_miles)
        with pytest.raises(ValueError):
            metrics.with_alpha(-0.1)

    def test_broken_path_rejected(self, graph, diamond_model):
        with pytest.raises(KeyError):
            path_metrics(
                graph, ["diamond:west", "diamond:east"], diamond_model
            )


class TestConvenience:
    def test_bit_miles(self, graph, diamond_model):
        path = ["diamond:west", "diamond:north", "diamond:east"]
        assert bit_miles(graph, path) == pytest.approx(graph.path_weight(path))

    def test_bit_risk_miles(self, graph, diamond_model):
        path = ["diamond:west", "diamond:north", "diamond:east"]
        assert bit_risk_miles(graph, path, diamond_model) == pytest.approx(
            path_metrics(graph, path, diamond_model).bit_risk_miles
        )
