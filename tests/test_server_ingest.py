"""Server-plane streaming ingest: ops, delta invalidation, shards.

The issue's end-to-end acceptance surface:

* ``ingest`` is an idempotency-tokened write barrier — applied once,
  replayed as ``duplicate: True`` on token redelivery, rejected with
  ``bad_request`` before any mutation on malformed records;
* applied changes feed the bounded changelog behind the ``subscribe``
  poll op, versioned and fingerprint-tagged;
* after an ingest that only moves one region's events, previously
  memoized sweeps for PoPs in untouched components are served from
  cache (hit counters advance, no new misses) while touched PoPs
  recompute — the delta-invalidation contract, observed through
  ``stats()["engine"]``;
* under sharding the ingest barrier rebinds every shard's ``o_h``
  before the reply: all subsequent replies carry the post-ingest
  fingerprint and the pool agrees with the parent.
"""

from __future__ import annotations

import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.geo.coords import GeoPoint
from repro.risk.model import RiskModel
from repro.server import (
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.topology.network import Network, NetworkTier, PoP
from tests.conftest import build_diamond_model, build_diamond_network

TORNADO = "fema-tornado"

# Island A: northern Maine — the one corpus spot where the tornado
# class density is exactly 0.0 (probed), so a tornado ingest elsewhere
# leaves these PoPs' o_h bitwise unchanged.  Island B: Kansas.
MAINE = ("isles:caribou", "isles:houlton")
KANSAS = ("isles:wichita", "isles:topeka")


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


@pytest.fixture
def diamond_server():
    thread = ServerThread(
        RoutingSession(build_diamond_network(), build_diamond_model()),
        ServerConfig(batch_linger=0.002),
    )
    host, port = thread.start()
    yield host, port
    thread.stop()


def _tornado(lat: float, lon: float, year: int) -> dict:
    return {"event_type": TORNADO, "lat": lat, "lon": lon, "year": year}


def build_two_island_network() -> Network:
    network = Network("isles", tier=NetworkTier.TIER1)
    network.add_pop(PoP("isles:caribou", "Caribou", GeoPoint(46.9, -68.0)))
    network.add_pop(PoP("isles:houlton", "Houlton", GeoPoint(46.1, -67.8)))
    network.add_pop(PoP("isles:wichita", "Wichita", GeoPoint(37.69, -97.34)))
    network.add_pop(PoP("isles:topeka", "Topeka", GeoPoint(39.05, -95.68)))
    network.add_link("isles:caribou", "isles:houlton")
    network.add_link("isles:wichita", "isles:topeka")
    return network


def build_two_island_model() -> RiskModel:
    pops = MAINE + KANSAS
    shares = {pop_id: 1.0 / len(pops) for pop_id in pops}
    oh = {pop_id: 1e-3 for pop_id in pops}
    of = {pop_id: 0.0 for pop_id in pops}
    return RiskModel(shares, oh, of, gamma_h=1e5, gamma_f=1e3)


@pytest.mark.timeout(180)
class TestIngestOp:
    def test_ingest_subscribe_round_trip(self, diamond_server):
        host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            baseline = client.subscribe(since=0)
            assert baseline["version"] == 0
            assert baseline["changes"] == []
            assert baseline["truncated"] is False

            reply = client.ingest(
                [
                    _tornado(37.5, -97.5, 2005),
                    _tornado(38.5, -96.5, 2006),
                ],
                token="rt-1",
            )
            assert reply["appended"] == 2
            assert reply["changed"] is True
            assert reply["duplicate"] is False
            fingerprint = client.last_fingerprint

            feed = client.subscribe(since=0)
            assert feed["version"] == 1
            assert len(feed["changes"]) == 1
            entry = feed["changes"][0]
            assert entry["op"] == "ingest"
            assert entry["fingerprint"] == fingerprint
            assert feed["fingerprint"] == fingerprint
            assert feed["truncated"] is False
            # A caught-up subscriber sees nothing new.
            assert client.subscribe(since=1)["changes"] == []

            assert client.stats()["ingests"] == 1

    def test_duplicate_token_replays_without_reapplying(self, diamond_server):
        host, port = diamond_server
        events = [_tornado(37.5, -97.5, 2005)]
        with RiskRouteClient(host, port) as client:
            first = client.ingest(events, token="dup-1")
            assert first["duplicate"] is False
            fingerprint = client.last_fingerprint

            replay = client.ingest(events, token="dup-1")
            assert replay == {"changed": first["changed"], "duplicate": True}
            assert client.last_fingerprint == fingerprint
            # The replay neither re-applies nor feeds the changelog.
            assert client.stats()["ingests"] == 1
            assert client.subscribe(since=0)["version"] == 1

    def test_bad_record_rejected_before_mutation(self, diamond_server):
        host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            fingerprint = client.subscribe(since=0)["fingerprint"]
            with pytest.raises(ServerError) as excinfo:
                client.ingest(
                    [_tornado(37.5, -97.5, 2005),
                     {"event_type": "volcano", "lat": 1.0, "lon": 1.0,
                      "year": 2005}],
                    token="bad-1",
                )
            assert excinfo.value.code == "bad_request"
            feed = client.subscribe(since=0)
            assert feed["fingerprint"] == fingerprint
            assert feed["version"] == 0
            assert client.stats()["ingests"] == 0

    def test_ingest_requires_events(self, diamond_server):
        host, port = diamond_server
        with RiskRouteClient(host, port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("ingest", events=[], token="empty-1")
            assert excinfo.value.code == "bad_request"


@pytest.mark.timeout(300)
class TestDeltaInvalidationAcrossIngest:
    def test_untouched_island_served_from_cache(self):
        """The issue's acceptance criterion, observed over the wire:
        after a localized ingest, memoized sweeps for PoPs whose risk
        inputs did not move keep serving from cache."""
        thread = ServerThread(
            RoutingSession(
                build_two_island_network(), build_two_island_model()
            ),
            ServerConfig(batch_linger=0.002),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                # First ingest swaps o_h wholesale onto the corpus
                # streaming model's field — only the *second* one
                # exercises the delta path.
                client.ingest([_tornado(37.5, -97.5, 2005)], token="seed")
                client.pair(*MAINE)
                client.pair(*KANSAS)
                before = client.stats()["engine"]
                assert before["cached_sweeps"] > 0

                reply = client.ingest(
                    [_tornado(38.5, -96.5, 2006)], token="second"
                )
                assert reply["changed"] is True
                fingerprint = client.last_fingerprint

                # The delta swap dropped only the dirty island's
                # risk-weighted sweeps — not the whole cache.
                swapped = client.stats()["engine"]
                assert swapped["sweeps"]["invalidations"] > \
                    before["sweeps"]["invalidations"]
                assert 0 < swapped["cached_sweeps"] < before["cached_sweeps"]

                # Maine's tornado density is exactly 0.0 before and
                # after (the new event is far out of kernel reach), so
                # its component is clean: pure cache — hit counters
                # advance, nothing is recomputed or re-registered.
                client.pair(*MAINE)
                # Every post-ingest query reply carries the new
                # fingerprint (stats replies are untagged).
                assert client.last_fingerprint == fingerprint
                mid = client.stats()["engine"]
                assert mid["sweeps"]["hits"] > swapped["sweeps"]["hits"]
                assert mid["cached_sweeps"] == swapped["cached_sweeps"]

                # Kansas is dirty: its pair recomputes and re-registers
                # the dropped sweep.
                client.pair(*KANSAS)
                assert client.last_fingerprint == fingerprint
                after = client.stats()["engine"]
                assert after["cached_sweeps"] > mid["cached_sweeps"]
        finally:
            thread.stop()

    def test_post_ingest_answers_match_cold_session(self):
        """Cache-served answers after the delta swap equal a cold
        server started on the equivalent state (no stale replies)."""
        def collect(warm_between):
            clear_engine_registry()
            thread = ServerThread(
                RoutingSession(
                    build_two_island_network(), build_two_island_model()
                ),
                ServerConfig(batch_linger=0.002),
            )
            host, port = thread.start()
            try:
                with RiskRouteClient(host, port) as client:
                    client.ingest([_tornado(37.5, -97.5, 2005)], token="b1")
                    if warm_between:
                        # Memoize both islands so the second ingest's
                        # delta swap answers Maine from cache.
                        client.pair(*MAINE)
                        client.pair(*KANSAS)
                    client.ingest([_tornado(38.5, -96.5, 2006)], token="b2")
                    replies = (client.pair(*MAINE), client.pair(*KANSAS))
                    fingerprint = client.last_fingerprint
            finally:
                thread.stop()
            return replies, fingerprint

        warm, warm_fp = collect(warm_between=True)
        cold, cold_fp = collect(warm_between=False)
        assert warm == cold
        assert warm_fp == cold_fp


@pytest.mark.timeout(300)
class TestShardedIngest:
    def test_two_shard_barrier_and_fingerprint_consistency(self):
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002, shards=2),
        )
        host, port = thread.start()
        pops = ("diamond:west", "diamond:east", "diamond:north",
                "diamond:south")
        try:
            with RiskRouteClient(host, port) as client:
                client.pair(pops[0], pops[1])
                reply = client.ingest(
                    [_tornado(37.5, -97.5, 2005)], token="shard-1"
                )
                assert reply["changed"] is True
                fingerprint = client.last_fingerprint

                # The barrier held: the pool agrees with the parent,
                # and every shard-served reply carries the post-ingest
                # fingerprint regardless of which shard answers.
                stats = client.stats()
                assert stats["shards"]["alive"] == 2
                assert stats["shards"]["fingerprint"] == fingerprint
                for source in pops:
                    for target in pops:
                        if source == target:
                            continue
                        client.pair(source, target)
                        assert client.last_fingerprint == fingerprint

                feed = client.subscribe(since=0)
                assert feed["version"] == 1
                assert feed["fingerprint"] == fingerprint
                assert feed["changes"][0]["op"] == "ingest"
        finally:
            thread.stop()
