"""Property-based tests for the RiskRoute core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitrisk import path_metrics
from repro.core.riskroute import RiskRouter
from repro.graph.core import Graph
from repro.graph.shortest_path import NoPathError
from repro.risk.model import RiskModel


@st.composite
def routed_worlds(draw):
    """A connected random graph plus a compatible risk model."""
    n = draw(st.integers(3, 10))
    nodes = [f"p{i}" for i in range(n)]
    g = Graph()
    for node in nodes:
        g.add_node(node)
    # Spanning chain guarantees connectivity.
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b, draw(st.floats(10.0, 500.0)))
    # Random chords.
    extra = draw(st.integers(0, n))
    pairs = [(i, j) for i in range(n) for j in range(i + 2, n)]
    if pairs:
        for i, j in draw(
            st.lists(
                st.sampled_from(pairs), min_size=0, max_size=extra, unique=True
            )
        ):
            g.add_edge(nodes[i], nodes[j], draw(st.floats(10.0, 800.0)))

    raw_shares = [draw(st.floats(0.01, 1.0)) for _ in nodes]
    total = sum(raw_shares)
    shares = {node: s / total for node, s in zip(nodes, raw_shares)}
    oh = {node: draw(st.floats(0.0, 0.05)) for node in nodes}
    of = {node: draw(st.sampled_from([0.0, 0.0, 50.0, 100.0])) for node in nodes}
    gamma_h = draw(st.sampled_from([0.0, 1e4, 1e5, 1e6]))
    model = RiskModel(shares, oh, of, gamma_h=gamma_h, gamma_f=1e3)
    return g, model


class TestOptimizerInvariants:
    @given(routed_worlds())
    @settings(max_examples=50, deadline=None)
    def test_riskroute_never_beats_shortest_on_miles(self, world):
        g, model = world
        router = RiskRouter(g, model)
        nodes = list(g.nodes())
        pair = router.route_pair(nodes[0], nodes[-1])
        assert pair.shortest.bit_miles <= pair.riskroute.bit_miles + 1e-6

    @given(routed_worlds())
    @settings(max_examples=50, deadline=None)
    def test_shortest_never_beats_riskroute_on_bit_risk(self, world):
        g, model = world
        router = RiskRouter(g, model)
        nodes = list(g.nodes())
        pair = router.route_pair(nodes[0], nodes[-1])
        assert (
            pair.riskroute.bit_risk_miles
            <= pair.shortest.bit_risk_miles + 1e-6
        )

    @given(routed_worlds())
    @settings(max_examples=50, deadline=None)
    def test_optimum_beats_every_reported_alternative(self, world):
        """The exact per-pair route is no worse than any per-source
        approximate route for the same pair."""
        g, model = world
        router = RiskRouter(g, model)
        nodes = list(g.nodes())
        source = nodes[0]
        exact = router.risk_routes_from(source, exact=True)
        approx = router.risk_routes_from(source, exact=False)
        for target, route in approx.items():
            assert (
                exact[target].bit_risk_miles <= route.bit_risk_miles + 1e-6
            )

    @given(routed_worlds())
    @settings(max_examples=50, deadline=None)
    def test_reported_costs_match_path_re_evaluation(self, world):
        g, model = world
        router = RiskRouter(g, model)
        nodes = list(g.nodes())
        for target, route in router.risk_routes_from(nodes[0], exact=True).items():
            metrics = path_metrics(g, list(route.path), model)
            assert abs(metrics.bit_risk_miles - route.bit_risk_miles) < 1e-9

    @given(routed_worlds())
    @settings(max_examples=30, deadline=None)
    def test_paths_are_simple(self, world):
        g, model = world
        router = RiskRouter(g, model)
        nodes = list(g.nodes())
        for route in router.risk_routes_from(nodes[0], exact=True).values():
            assert len(route.path) == len(set(route.path))
