"""Tests for repro.stats.kde."""

import math

import numpy as np
import pytest

from repro.geo.coords import CONTINENTAL_US, GeoPoint
from repro.geo.grid import GeoGrid
from repro.stats.kde import GaussianKDE, points_to_array

CLUSTER = [
    GeoPoint(35.0, -95.0),
    GeoPoint(35.1, -95.1),
    GeoPoint(34.9, -94.9),
]
FAR_AWAY = GeoPoint(45.0, -70.0)


class TestConstruction:
    def test_empty_events_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE([], 10.0)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, 0.0)
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, -5.0)

    def test_nan_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, float("nan"))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, 10.0, chunk_size=0)

    def test_n_events(self):
        assert GaussianKDE(CLUSTER, 10.0).n_events == 3


class TestDensity:
    def test_higher_near_events(self):
        kde = GaussianKDE(CLUSTER, 30.0)
        assert kde.density(CLUSTER[0]) > kde.density(FAR_AWAY)

    def test_single_event_peak_value(self):
        # At the event itself, density = 1 / (2 pi sigma^2).
        sigma = 25.0
        kde = GaussianKDE([CLUSTER[0]], sigma)
        expected = 1.0 / (2.0 * math.pi * sigma**2)
        assert kde.density(CLUSTER[0]) == pytest.approx(expected, rel=1e-9)

    def test_density_many_matches_scalar(self):
        kde = GaussianKDE(CLUSTER, 30.0)
        many = kde.density_many([CLUSTER[0], FAR_AWAY])
        assert many[0] == pytest.approx(kde.density(CLUSTER[0]))
        assert many[1] == pytest.approx(kde.density(FAR_AWAY))

    def test_density_many_empty(self):
        assert GaussianKDE(CLUSTER, 30.0).density_many([]).shape == (0,)

    def test_chunking_consistent(self):
        points = [GeoPoint(30.0 + i * 0.1, -100.0) for i in range(50)]
        small = GaussianKDE(CLUSTER, 30.0, chunk_size=7)
        large = GaussianKDE(CLUSTER, 30.0, chunk_size=1000)
        np.testing.assert_allclose(
            small.density_many(points), large.density_many(points)
        )

    def test_density_array_shape_validation(self):
        kde = GaussianKDE(CLUSTER, 30.0)
        with pytest.raises(ValueError):
            kde.density_array(np.zeros((3, 3)))

    def test_wider_bandwidth_flattens(self):
        narrow = GaussianKDE(CLUSTER, 5.0)
        wide = GaussianKDE(CLUSTER, 500.0)
        ratio_narrow = narrow.density(CLUSTER[0]) / max(
            narrow.density(FAR_AWAY), 1e-300
        )
        ratio_wide = wide.density(CLUSTER[0]) / wide.density(FAR_AWAY)
        assert ratio_narrow > ratio_wide

    def test_integrates_to_one_approximately(self):
        # Integrate over a fine local grid: cell density * cell area.
        kde = GaussianKDE([GeoPoint(39.0, -95.0)], 20.0)
        grid = GeoGrid(
            type(CONTINENTAL_US)(37.0, -98.0, 41.0, -92.0), 120, 120
        )
        field = kde.evaluate_grid(grid)
        # Cell area in sq miles: 69.05 miles/deg lat, cos-lat scaled lon.
        cell_h = grid.cell_height_degrees * 69.05
        cell_w = grid.cell_width_degrees * 69.05 * math.cos(math.radians(39.0))
        mass = field.total_mass() * cell_h * cell_w
        assert mass == pytest.approx(1.0, rel=0.02)


class TestLogDensity:
    def test_matches_log_of_density(self):
        kde = GaussianKDE(CLUSTER, 30.0)
        logs = kde.log_density_many([CLUSTER[0]])
        assert logs[0] == pytest.approx(math.log(kde.density(CLUSTER[0])))

    def test_floor_keeps_finite(self):
        kde = GaussianKDE(CLUSTER, 1.0)
        # Thousands of miles away: raw density underflows to 0.
        logs = kde.log_density_many([GeoPoint(70.0, 170.0)])
        assert np.isfinite(logs[0])


class TestTruncation:
    def test_invalid_cutoff_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, 10.0, cutoff_sigmas=0.0)
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, 10.0, cutoff_sigmas=-3.0)
        with pytest.raises(ValueError):
            GaussianKDE(CLUSTER, 10.0, cutoff_sigmas=float("nan"))

    def test_exact_mode_has_no_index(self):
        kde = GaussianKDE(CLUSTER, 10.0, cutoff_sigmas=None)
        assert kde.cutoff_sigmas is None
        assert kde.density(CLUSTER[0]) > 0.0

    def test_truncated_matches_exact_on_spread_events(self):
        rng = np.random.default_rng(11)
        events = np.column_stack(
            [rng.uniform(25.0, 49.0, 400), rng.uniform(-124.0, -67.0, 400)]
        )
        queries = np.column_stack(
            [rng.uniform(25.0, 49.0, 150), rng.uniform(-124.0, -67.0, 150)]
        )
        exact = GaussianKDE.from_array(events, 40.0, cutoff_sigmas=None)
        fast = GaussianKDE.from_array(events, 40.0, cutoff_sigmas=8.0)
        bound = math.exp(-32.0) / (2.0 * math.pi * 40.0**2)
        np.testing.assert_allclose(
            fast.density_array(queries),
            exact.density_array(queries),
            rtol=1e-9,
            atol=bound,
        )

    def test_far_query_beyond_cutoff_is_zero(self):
        # ~1800 miles from the cluster with a 5-mile bandwidth: every
        # event is far outside 8 sigma, so the truncated sum is exactly
        # zero (the dense value itself underflows to 0 there too).
        kde = GaussianKDE(CLUSTER, 5.0)
        assert kde.density(GeoPoint(48.0, -70.0)) == 0.0

    def test_workers_do_not_change_results(self):
        rng = np.random.default_rng(3)
        events = np.column_stack(
            [rng.uniform(30.0, 45.0, 200), rng.uniform(-110.0, -80.0, 200)]
        )
        queries = np.column_stack(
            [rng.uniform(30.0, 45.0, 64), rng.uniform(-110.0, -80.0, 64)]
        )
        serial = GaussianKDE.from_array(events, 25.0, workers=0)
        threaded = GaussianKDE.from_array(
            events, 25.0, workers=4, chunk_size=16
        )
        np.testing.assert_array_equal(
            serial.density_array(queries), threaded.density_array(queries)
        )

    def test_holdout_log_density_matches_refit(self):
        rng = np.random.default_rng(5)
        events = [
            GeoPoint(float(lat), float(lon))
            for lat, lon in zip(
                rng.uniform(30.0, 45.0, 40), rng.uniform(-110.0, -80.0, 40)
            )
        ]
        kde = GaussianKDE(events, 35.0)
        held_out = np.array([3, 11, 27])
        train = [p for i, p in enumerate(events) if i not in set(held_out)]
        test = [events[i] for i in held_out]
        refit = GaussianKDE(train, 35.0, cutoff_sigmas=None)
        np.testing.assert_allclose(
            kde.holdout_log_density(held_out),
            refit.log_density_many(test),
            rtol=1e-12,
        )

    def test_holdout_needs_training_events(self):
        kde = GaussianKDE(CLUSTER, 30.0)
        with pytest.raises(ValueError):
            kde.holdout_log_density(np.array([0, 1, 2]))

    def test_fingerprint_tracks_content(self):
        base = GaussianKDE(CLUSTER, 30.0)
        assert base.fingerprint == GaussianKDE(CLUSTER, 30.0).fingerprint
        assert base.fingerprint != GaussianKDE(CLUSTER, 31.0).fingerprint
        assert (
            base.fingerprint
            != GaussianKDE(CLUSTER, 30.0, cutoff_sigmas=None).fingerprint
        )
        assert (
            base.fingerprint != GaussianKDE(CLUSTER[:2], 30.0).fingerprint
        )


class TestHelpers:
    def test_points_to_array(self):
        arr = points_to_array(CLUSTER)
        assert arr.shape == (3, 2)
        assert arr[0, 0] == 35.0
        assert arr[0, 1] == -95.0

    def test_points_to_array_empty(self):
        arr = points_to_array([])
        assert arr.shape == (0, 2)
        assert arr.dtype == np.float64

    def test_evaluate_grid_shape(self):
        grid = GeoGrid(CONTINENTAL_US, 10, 20)
        field = GaussianKDE(CLUSTER, 50.0).evaluate_grid(grid)
        assert field.values.shape == (10, 20)
        peak_location, _ = field.peak()
        # Peak cell should be near the cluster.
        assert abs(peak_location.lat - 35.0) < 2.0
        assert abs(peak_location.lon + 95.0) < 2.0

    def test_evaluate_grid_uses_cache(self, tmp_path):
        from repro.stats.fieldcache import RiskFieldCache

        cache = RiskFieldCache(tmp_path)
        grid = GeoGrid(CONTINENTAL_US, 6, 9)
        kde = GaussianKDE(CLUSTER, 50.0)
        cold = kde.evaluate_grid(grid, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        warm = kde.evaluate_grid(grid, cache=cache)
        assert cache.stats.hits == 1
        np.testing.assert_array_equal(cold.values, warm.values)
        # A different bandwidth misses: the key covers KDE identity.
        GaussianKDE(CLUSTER, 51.0).evaluate_grid(grid, cache=cache)
        assert cache.stats.misses == 2
