"""Tests for repro.stats.sampling."""

import numpy as np
import pytest

from repro.geo.coords import BoundingBox, GeoPoint
from repro.geo.distance import haversine_miles
from repro.stats.sampling import (
    sample_gaussian_cluster,
    sample_mixture,
    sample_uniform_box,
    weighted_choice_indices,
)

BOX = BoundingBox(30.0, -100.0, 40.0, -90.0)
CENTER = GeoPoint(35.0, -95.0)


class TestUniform:
    def test_count_and_containment(self):
        rng = np.random.default_rng(0)
        points = sample_uniform_box(rng, BOX, 200)
        assert len(points) == 200
        assert all(BOX.contains(p) for p in points)

    def test_deterministic(self):
        a = sample_uniform_box(np.random.default_rng(5), BOX, 10)
        b = sample_uniform_box(np.random.default_rng(5), BOX, 10)
        assert a == b

    def test_negative_count(self):
        with pytest.raises(ValueError):
            sample_uniform_box(np.random.default_rng(0), BOX, -1)

    def test_zero_count(self):
        assert sample_uniform_box(np.random.default_rng(0), BOX, 0) == []


class TestGaussianCluster:
    def test_spread_scale(self):
        rng = np.random.default_rng(1)
        points = sample_gaussian_cluster(rng, CENTER, 50.0, 500)
        distances = [haversine_miles(CENTER, p) for p in points]
        # Mean radial distance of a 2-D Gaussian is sigma * sqrt(pi/2).
        assert np.mean(distances) == pytest.approx(
            50.0 * np.sqrt(np.pi / 2), rel=0.15
        )

    def test_clamped_inside_box(self):
        rng = np.random.default_rng(2)
        tight = BoundingBox(34.9, -95.1, 35.1, -94.9)
        points = sample_gaussian_cluster(rng, CENTER, 500.0, 100, clamp=tight)
        assert all(tight.contains(p) for p in points)

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            sample_gaussian_cluster(np.random.default_rng(0), CENTER, 0.0, 5)

    def test_roughly_isotropic(self):
        rng = np.random.default_rng(3)
        points = sample_gaussian_cluster(rng, CENTER, 100.0, 2000)
        lat_spread = np.std([p.lat for p in points]) * 69.05
        lon_spread = (
            np.std([p.lon for p in points])
            * 69.05
            * np.cos(np.radians(CENTER.lat))
        )
        assert lat_spread == pytest.approx(lon_spread, rel=0.1)


class TestMixture:
    def components(self):
        return [
            (GeoPoint(35.0, -95.0), 20.0, 3.0),
            (GeoPoint(45.0, -70.0), 20.0, 1.0),
        ]

    def test_total_count(self):
        rng = np.random.default_rng(4)
        points = sample_mixture(rng, self.components(), 400)
        assert len(points) == 400

    def test_weights_respected(self):
        rng = np.random.default_rng(4)
        points = sample_mixture(rng, self.components(), 2000)
        near_first = sum(
            1 for p in points if haversine_miles(p, GeoPoint(35.0, -95.0)) < 300
        )
        assert near_first / 2000 == pytest.approx(0.75, abs=0.05)

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            sample_mixture(np.random.default_rng(0), [], 10)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            sample_mixture(
                np.random.default_rng(0),
                [(CENTER, 10.0, 0.0)],
                10,
            )


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = np.random.default_rng(6)
        picks = weighted_choice_indices(rng, [0.0, 1.0, 0.0], 50)
        assert set(picks.tolist()) == {1}

    def test_empty_weights(self):
        with pytest.raises(ValueError):
            weighted_choice_indices(np.random.default_rng(0), [], 5)

    def test_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_choice_indices(np.random.default_rng(0), [1.0, -1.0], 5)

    def test_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice_indices(np.random.default_rng(0), [0.0, 0.0], 5)
