"""Tests for repro.topology.builders."""

import math

import numpy as np
import pytest

from repro.geo.distance import haversine_miles
from repro.topology.builders import (
    build_network,
    continental_network,
    gabriel_pairs,
    mesh_links,
    place_pops,
)
from repro.topology.cities import ALL_CITIES, top_cities
from repro.topology.network import Network


class TestPlacePops:
    def test_one_pop_per_city(self):
        net = Network("t")
        cities = top_cities(5)
        place_pops(net, cities, 5)
        assert net.pop_count == 5
        assert {p.city for p in net.pops()} == {c.key for c in cities}

    def test_metro_jitter_for_repeats(self):
        net = Network("t")
        cities = top_cities(2)
        place_pops(net, cities, 6)
        assert net.pop_count == 6
        nyc_pops = [p for p in net.pops() if p.city == "New York, NY"]
        assert len(nyc_pops) == 3
        # Jittered sites are distinct but within the metro area.
        base = nyc_pops[0].location
        for extra in nyc_pops[1:]:
            dist = haversine_miles(base, extra.location)
            assert 1.0 < dist < 60.0

    def test_unique_pop_ids(self):
        net = Network("t")
        place_pops(net, top_cities(3), 12)
        ids = [p.pop_id for p in net.pops()]
        assert len(ids) == len(set(ids))

    def test_no_cities_rejected(self):
        net = Network("t")
        with pytest.raises(ValueError):
            place_pops(net, [], 3)

    def test_negative_count_rejected(self):
        net = Network("t")
        with pytest.raises(ValueError):
            place_pops(net, top_cities(3), -1)


class TestGabriel:
    def test_two_points_connected(self):
        pairs = gabriel_pairs(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert pairs == [(0, 1)]

    def test_collinear_middle_blocks(self):
        # Middle point sits inside the disc of the outer pair.
        lat = np.array([0.0, 0.0, 0.0])
        lon = np.array([0.0, 1.0, 2.0])
        pairs = gabriel_pairs(lat, lon)
        assert (0, 2) not in pairs
        assert (0, 1) in pairs
        assert (1, 2) in pairs

    def test_empty_and_single(self):
        assert gabriel_pairs(np.array([]), np.array([])) == []
        assert gabriel_pairs(np.array([1.0]), np.array([1.0])) == []

    def test_gabriel_connected(self):
        rng = np.random.default_rng(0)
        lat = rng.uniform(30, 45, 40)
        lon = rng.uniform(-120, -75, 40)
        pairs = gabriel_pairs(lat, lon)
        # Union-find connectivity check.
        parent = list(range(40))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, j in pairs:
            parent[find(i)] = find(j)
        assert len({find(i) for i in range(40)}) == 1


class TestMeshLinks:
    def test_connected_after_meshing(self):
        net = Network("t")
        place_pops(net, top_cities(20), 20)
        mesh_links(net, 3.0)
        assert net.is_connected()

    def test_average_degree_near_target(self):
        net = Network("t")
        place_pops(net, top_cities(30), 30)
        mesh_links(net, 3.0)
        assert net.average_outdegree() == pytest.approx(3.0, abs=0.5)

    def test_too_few_pops_rejected(self):
        net = Network("t")
        place_pops(net, top_cities(1), 1)
        with pytest.raises(ValueError):
            mesh_links(net, 2.0)

    def test_invalid_degree_rejected(self):
        net = Network("t")
        place_pops(net, top_cities(5), 5)
        with pytest.raises(ValueError):
            mesh_links(net, 0.5)

    def test_deterministic(self):
        def build():
            net = Network("t")
            place_pops(net, top_cities(15), 15)
            mesh_links(net, 2.8)
            return sorted(l.endpoints for l in net.links())

        assert build() == build()


class TestBuildNetwork:
    def test_full_build(self):
        net = build_network("demo", top_cities(12), 12, 2.5)
        assert net.pop_count == 12
        assert net.is_connected()

    def test_regional_states_recorded(self):
        net = build_network(
            "demo", top_cities(5), 5, 2.0, tier="regional", states=("TX",)
        )
        assert net.tier == "regional"
        assert net.states == ("TX",)

    def test_single_pop_no_links(self):
        net = build_network("demo", top_cities(1), 1, 2.0)
        assert net.pop_count == 1
        assert net.link_count == 0


class TestContinentalNetwork:
    def test_small_build_connected_and_sized(self):
        net = continental_network(pop_count=120, seed=3)
        assert net.pop_count == 120
        assert net.is_connected()
        target_links = round(3.2 * 120 / 2)
        assert net.link_count >= 119  # at least spanning
        assert abs(net.link_count - target_links) <= 2

    def test_deterministic_for_seed(self):
        # The only randomness is the per-metro bearing offset, which
        # only moves repeat PoPs — so seeds must matter exactly when
        # cities host more than one PoP.
        def build(pop_count, seed):
            net = continental_network(pop_count=pop_count, seed=seed)
            return (
                sorted(l.endpoints for l in net.links()),
                sorted(
                    (p.pop_id, p.location.lat, p.location.lon)
                    for p in net.pops()
                ),
            )

        assert build(80, 5) == build(80, 5)
        assert build(80, 5) == build(80, 6)  # no repeats, no randomness
        scale = len(ALL_CITIES) + 40
        assert build(scale, 5) == build(scale, 5)
        assert build(scale, 5) != build(scale, 6)

    def test_quota_covers_every_city_at_scale(self):
        # pop_count >= gazetteer size: every city gets at least one PoP.
        count = len(ALL_CITIES) + 40
        net = continental_network(pop_count=count, seed=0)
        assert net.pop_count == count
        cities = {p.city for p in net.pops()}
        assert len(cities) == len(ALL_CITIES)

    def test_metro_scatter_stays_local(self):
        spread = 2.0
        net = continental_network(
            pop_count=len(ALL_CITIES) + 60,
            seed=1,
            metro_spread_miles=spread,
        )
        by_city = {}
        for pop in net.pops():
            by_city.setdefault(pop.city, []).append(pop)
        widest = max(len(pops) for pops in by_city.values())
        assert widest > 1  # repeats exist, so the scatter is exercised
        for pops in by_city.values():
            if len(pops) < 2:
                continue
            anchor = pops[0].location
            for pop in pops[1:]:
                # Vogel spiral radius is spread * sqrt(k).
                bound = spread * math.sqrt(len(pops)) + 1e-6
                assert haversine_miles(anchor, pop.location) <= bound

    def test_footprint_is_continental(self):
        net = continental_network(pop_count=150, seed=0)
        lats = [p.location.lat for p in net.pops()]
        lons = [p.location.lon for p in net.pops()]
        assert max(lats) - min(lats) > 10.0
        assert max(lons) - min(lons) > 30.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            continental_network(pop_count=1)
        with pytest.raises(ValueError):
            continental_network(pop_count=10, avg_degree=0.5)
        with pytest.raises(ValueError):
            continental_network(pop_count=10, neighbors=0)

    def test_unique_pop_ids(self):
        net = continental_network(pop_count=500, seed=0)
        ids = [p.pop_id for p in net.pops()]
        assert len(ids) == len(set(ids))
