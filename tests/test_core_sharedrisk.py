"""Tests for repro.core.sharedrisk."""

import math

import pytest

from repro.core.sharedrisk import shared_risk_report, storm_shared_fate
from repro.forecast.risk import ForecastSnapshot
from repro.geo.coords import GeoPoint
from repro.risk.historical import HistoricalRiskModel
from repro.stats.kde import GaussianKDE
from repro.topology.network import Network, PoP


def _net(name, cities):
    net = Network(name)
    for key, (lat, lon) in cities.items():
        net.add_pop(PoP(f"{name}:{key}", key, GeoPoint(lat, lon)))
    keys = list(cities)
    for a, b in zip(keys, keys[1:]):
        net.add_link(f"{name}:{a}", f"{name}:{b}")
    return net


EAST = {"nyc": (40.71, -74.01), "philly": (39.95, -75.17), "dc": (38.91, -77.04)}
WEST = {"la": (34.05, -118.24), "sf": (37.77, -122.42), "sea": (47.61, -122.33)}


def flat_historical():
    events = [GeoPoint(lat, lon) for lat in (35.0, 40.0, 45.0) for lon in (-120.0, -95.0, -75.0)]
    return HistoricalRiskModel({"storm": GaussianKDE(events, 800.0)})


class TestSharedRiskReport:
    def test_disjoint_networks_diversified(self):
        east = _net("East", EAST)
        west = _net("West", WEST)
        report = shared_risk_report(east, west, flat_historical())
        assert report.colocation_fraction_a == 0.0
        assert report.colocation_fraction_b == 0.0
        assert report.risk_profile_divergence > 0.3
        assert report.diversification_score > 0.3

    def test_identical_networks_fully_shared(self):
        east = _net("EastA", EAST)
        twin = _net("EastB", EAST)
        report = shared_risk_report(east, twin, flat_historical())
        assert report.colocation_fraction_a == 1.0
        assert report.colocation_fraction_b == 1.0
        assert report.risk_profile_divergence == pytest.approx(0.0, abs=1e-9)
        assert report.diversification_score == pytest.approx(0.0, abs=1e-9)
        assert report.shared_metro_risk == pytest.approx(1.0)

    def test_divergence_bounded(self):
        east = _net("East", EAST)
        west = _net("West", WEST)
        report = shared_risk_report(east, west, flat_historical())
        assert 0.0 <= report.risk_profile_divergence <= math.log(2.0) + 1e-9

    def test_corpus_networks(self, teliasonera):
        from repro.topology.zoo import network_by_name

        report = shared_risk_report(teliasonera, network_by_name("NTT"))
        # Heavy metro overlap between two nationwide tier-1s.
        assert report.colocation_fraction_a > 0.5
        assert report.shared_metro_risk > 0.3


class TestStormSharedFate:
    def test_joint_exposure(self, teliasonera):
        from repro.topology.zoo import network_by_name

        snapshot = ForecastSnapshot(GeoPoint(40.5, -74.0), 150.0, 400.0)
        fate = storm_shared_fate(
            teliasonera, network_by_name("NTT"), snapshot
        )
        assert 0.0 < fate["exposed_share_a"] <= 1.0
        assert 0.0 < fate["exposed_share_b"] <= 1.0
        assert fate["joint_exposure"] <= min(
            fate["exposed_share_a"], fate["exposed_share_b"]
        ) + 1e-9

    def test_clear_weather_zero(self, teliasonera):
        from repro.topology.zoo import network_by_name

        snapshot = ForecastSnapshot(GeoPoint(25.0, -60.0), 50.0, 100.0)
        fate = storm_shared_fate(teliasonera, network_by_name("NTT"), snapshot)
        assert fate["exposed_share_a"] == 0.0
        assert fate["joint_exposure"] == 0.0
