"""Tests for repro.geo.regions."""

import pytest

from repro.geo.coords import BoundingBox, GeoPoint
from repro.geo.regions import (
    CENTRAL_PLAINS,
    GULF_COAST,
    Region,
    STATE_BOXES,
    WEST_COAST,
    state_of,
    states_region,
)


class TestRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region("empty", ())

    def test_contains_any_box(self):
        region = Region(
            "two",
            (
                BoundingBox(0.0, 0.0, 1.0, 1.0),
                BoundingBox(5.0, 5.0, 6.0, 6.0),
            ),
        )
        assert region.contains(GeoPoint(0.5, 0.5))
        assert region.contains(GeoPoint(5.5, 5.5))
        assert not region.contains(GeoPoint(3.0, 3.0))

    def test_filter(self):
        region = Region("one", (BoundingBox(0.0, 0.0, 1.0, 1.0),))
        points = [GeoPoint(0.5, 0.5), GeoPoint(2.0, 2.0)]
        assert region.filter(points) == [GeoPoint(0.5, 0.5)]


class TestNamedRegions:
    def test_new_orleans_in_gulf(self):
        assert GULF_COAST.contains(GeoPoint(29.95, -90.07))

    def test_oklahoma_city_in_plains(self):
        assert CENTRAL_PLAINS.contains(GeoPoint(35.47, -97.52))

    def test_san_francisco_on_west_coast(self):
        assert WEST_COAST.contains(GeoPoint(37.77, -122.42))

    def test_boston_not_in_gulf(self):
        assert not GULF_COAST.contains(GeoPoint(42.36, -71.06))


class TestStates:
    def test_all_codes_two_letters(self):
        for code in STATE_BOXES:
            assert len(code) == 2
            assert code.isupper()

    def test_state_of_known_cities(self):
        assert state_of(GeoPoint(30.27, -97.74)) == "TX"   # Austin
        assert state_of(GeoPoint(44.94, -93.09)) == "MN"   # St. Paul

    def test_state_of_offshore_empty(self):
        assert state_of(GeoPoint(25.0, -60.0)) == ""

    def test_states_region_contains_member_states(self):
        region = states_region(["TX", "OK"])
        assert region.contains(GeoPoint(35.47, -97.52))   # OKC
        assert region.contains(GeoPoint(29.76, -95.37))   # Houston
        assert not region.contains(GeoPoint(40.71, -74.01))  # NYC

    def test_states_region_unknown_code(self):
        with pytest.raises(KeyError):
            states_region(["TX", "ZZ"])

    def test_states_region_name_sorted(self):
        region = states_region(["TX", "OK"])
        assert region.name == "states:OK+TX"
