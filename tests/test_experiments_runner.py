"""Tests for the bulk runner, case-study helpers, and example scripts."""

import pathlib
import py_compile

import pytest

from repro.experiments.figure12_tier1_casestudy import sample_ticks
from repro.experiments.figure13_regional_casestudy import networks_in_scope
from repro.experiments.runner import SLOW_EXPERIMENTS, run_many
from repro.forecast.storms import storm_advisories


class TestSampleTicks:
    def test_includes_endpoints(self):
        advisories = storm_advisories("Sandy")
        ticks = sample_ticks(advisories, 5)
        assert ticks[0] is advisories[0]
        assert ticks[-1] is advisories[-1]
        assert len(ticks) == 5

    def test_monotone_times(self):
        ticks = sample_ticks(storm_advisories("Irene"), 7)
        times = [t.time for t in ticks]
        assert times == sorted(times)

    def test_more_ticks_than_advisories(self):
        advisories = storm_advisories("Katrina")
        ticks = sample_ticks(advisories, 1000)
        assert len(ticks) == len(advisories)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            sample_ticks(storm_advisories("Sandy"), 0)


class TestNetworksInScope:
    def test_katrina_gulf_only(self):
        in_scope = networks_in_scope("Katrina")
        assert "Telepak" in in_scope          # Gulf states regional
        assert "CoStreet" not in in_scope     # Pacific northwest

    def test_sandy_atlantic(self):
        in_scope = networks_in_scope("Sandy")
        assert "Digex" in in_scope            # mid-Atlantic regional
        assert "Goodnet" not in in_scope      # southwest

    def test_deterministic(self):
        assert networks_in_scope("Irene") == networks_in_scope("Irene")


class TestRunner:
    def test_explicit_ids(self):
        results = run_many(["figure6"])
        assert list(results) == ["figure6"]
        assert results["figure6"].rows

    def test_fast_skips_slow(self):
        # Do not execute: just verify the selection logic via the
        # constant and an empty explicit list.
        assert "table1" in SLOW_EXPERIMENTS
        assert "figure10" in SLOW_EXPERIMENTS

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_many(["tableZZ"])


class TestExamples:
    def test_all_examples_compile(self):
        examples = pathlib.Path(__file__).parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
