"""End-to-end daemon smoke: ``riskroute serve`` + ``riskroute query``.

Run as real subprocesses: start the daemon on an ephemeral port, drive
it through route / update_forecast / stats queries, then SIGINT it and
assert a clean drain.  This is the server smoke CI runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def _env():
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _cli(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=120, env=_env(), **kwargs
    )


@pytest.fixture(scope="module")
def daemon():
    """A ``riskroute serve`` subprocess on an ephemeral port."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "Teliasonera",
            "--port", "0", "--request-timeout", "60",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(),
    )
    try:
        banner = process.stdout.readline()
        assert "serving Teliasonera" in banner, (
            banner + (process.stderr.read() if process.poll() else "")
        )
        port = int(banner.rsplit(":", 1)[1])
        yield process, port
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


def test_cli_version():
    result = _cli("--version")
    assert result.returncode == 0
    assert "riskroute" in result.stdout


def test_serve_query_smoke(daemon):
    process, port = daemon

    result = _cli("query", "--port", str(port), "health")
    assert result.returncode == 0, result.stderr
    assert json.loads(result.stdout)["status"] == "ok"

    result = _cli(
        "query", "--port", str(port), "route",
        "Teliasonera:Miami, FL", "Teliasonera:Seattle, WA",
    )
    assert result.returncode == 0, result.stderr
    route = json.loads(result.stdout)
    assert route["path"][0] == "Teliasonera:Miami, FL"
    assert route["path"][-1] == "Teliasonera:Seattle, WA"
    assert route["bit_risk_miles"] > 0

    advisory = json.dumps({"Teliasonera:Miami, FL": 0.8})
    result = _cli(
        "query", "--port", str(port), "update-forecast", "-",
        input=advisory,
    )
    assert result.returncode == 0, result.stderr
    assert json.loads(result.stdout)["changed"] is True

    result = _cli("query", "--port", str(port), "stats")
    assert result.returncode == 0, result.stderr
    stats = json.loads(result.stdout)
    assert stats["forecast_swaps"] == 1
    assert stats["replies"] >= 3
    assert stats["network"] == "Teliasonera"

    result = _cli(
        "query", "--port", str(port), "route",
        "Teliasonera:Atlantis, XX", "Teliasonera:Seattle, WA",
    )
    assert result.returncode == 1
    assert "unknown_node" in result.stderr


def test_serve_unknown_pop_in_query(daemon):
    _, port = daemon
    result = _cli("query", "--port", str(port), "pair",
                  "Teliasonera:Miami, FL", "nope")
    assert result.returncode == 1
    assert "unknown_node" in result.stderr


def test_sigint_drains_cleanly(daemon):
    process, port = daemon
    # One final probe proves it is alive, then interrupt it.
    assert _cli("query", "--port", str(port), "health").returncode == 0
    process.send_signal(signal.SIGINT)
    assert process.wait(timeout=60) == 0
    remainder = process.stdout.read()
    assert "drained and stopped" in remainder
    # And the port actually closed.
    time.sleep(0.1)
    result = _cli("query", "--port", str(port), "--timeout", "5", "health")
    assert result.returncode == 2
