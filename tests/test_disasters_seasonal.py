"""Tests for repro.disasters.seasonal."""

import numpy as np
import pytest

from repro.disasters.catalog import catalog_of
from repro.disasters.events import EventType
from repro.disasters.seasonal import (
    MONTHLY_CLIMATOLOGY,
    assign_months,
    monthly_event_weights,
    seasonal_catalog,
    seasonal_kde,
    seasonal_kdes,
)


class TestClimatology:
    def test_every_class_has_profile(self):
        assert set(MONTHLY_CLIMATOLOGY) == set(EventType.ALL)
        for profile in MONTHLY_CLIMATOLOGY.values():
            assert len(profile) == 12
            assert all(w > 0 for w in profile)

    def test_weights_normalised(self):
        for event_type in EventType.ALL:
            weights = monthly_event_weights(event_type)
            assert weights.sum() == pytest.approx(1.0)

    def test_hurricane_season_peaks_late_summer(self):
        weights = monthly_event_weights(EventType.FEMA_HURRICANE)
        assert int(np.argmax(weights)) + 1 in (8, 9)
        assert weights[8] > 10 * weights[1]  # September >> February

    def test_tornado_season_peaks_spring(self):
        weights = monthly_event_weights(EventType.FEMA_TORNADO)
        assert int(np.argmax(weights)) + 1 in (4, 5, 6)

    def test_earthquakes_flat(self):
        weights = monthly_event_weights(EventType.NOAA_EARTHQUAKE)
        assert weights.max() == pytest.approx(weights.min())

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            monthly_event_weights("typhoon")


class TestAssignment:
    def test_every_event_assigned(self):
        catalog = catalog_of(EventType.FEMA_HURRICANE)
        pairs = assign_months(catalog, EventType.FEMA_HURRICANE)
        assert len(pairs) == len(catalog)
        assert all(1 <= month <= 12 for _, month in pairs)

    def test_deterministic(self):
        catalog = catalog_of(EventType.FEMA_TORNADO)
        a = assign_months(catalog, EventType.FEMA_TORNADO)
        b = assign_months(catalog, EventType.FEMA_TORNADO)
        assert [m for _, m in a] == [m for _, m in b]

    def test_distribution_tracks_climatology(self):
        catalog = catalog_of(EventType.FEMA_HURRICANE)
        pairs = assign_months(catalog, EventType.FEMA_HURRICANE)
        september = sum(1 for _, m in pairs if m == 9)
        february = sum(1 for _, m in pairs if m == 2)
        assert september > 5 * max(1, february)


class TestSeasonalCatalogs:
    def test_months_partition_catalog(self):
        total = sum(
            len(seasonal_catalog(EventType.FEMA_STORM, month))
            for month in range(1, 13)
        )
        assert total == len(catalog_of(EventType.FEMA_STORM))

    def test_invalid_month(self):
        with pytest.raises(ValueError):
            seasonal_catalog(EventType.FEMA_STORM, 13)

    def test_seasonal_kde_bandwidth_widened(self):
        from repro.disasters.catalog import PRETRAINED_BANDWIDTHS

        kde = seasonal_kde(EventType.FEMA_HURRICANE, 9)
        assert kde.bandwidth_miles > PRETRAINED_BANDWIDTHS[
            EventType.FEMA_HURRICANE
        ]

    def test_seasonal_risk_contrast(self):
        """September hurricane *risk* on the Gulf coast dwarfs
        February's once rate multipliers are applied."""
        from repro.disasters.seasonal import seasonal_historical_model
        from repro.geo.coords import GeoPoint

        new_orleans = GeoPoint(29.95, -90.07)
        september = seasonal_historical_model(9)
        february = seasonal_historical_model(2)
        september_risk = september.class_risk_many(
            EventType.FEMA_HURRICANE, [new_orleans]
        )[0]
        february_risk = february.class_risk_many(
            EventType.FEMA_HURRICANE, [new_orleans]
        )[0]
        # class_risk_many excludes per-class weights; apply rates.
        from repro.disasters.seasonal import seasonal_rate_multiplier

        september_risk *= seasonal_rate_multiplier(EventType.FEMA_HURRICANE, 9)
        february_risk *= seasonal_rate_multiplier(EventType.FEMA_HURRICANE, 2)
        assert september_risk > 5.0 * february_risk

    def test_rate_multipliers_average_to_one(self):
        from repro.disasters.seasonal import seasonal_rate_multiplier

        multipliers = [
            seasonal_rate_multiplier(EventType.FEMA_HURRICANE, month)
            for month in range(1, 13)
        ]
        assert sum(multipliers) / 12 == pytest.approx(1.0)

    def test_seasonal_model_total_risk(self):
        """The seasonal model's aggregate risk responds to the season."""
        from repro.disasters.seasonal import seasonal_historical_model
        from repro.geo.coords import GeoPoint

        new_orleans = GeoPoint(29.95, -90.07)
        september = seasonal_historical_model(9).risk_at(new_orleans)
        february = seasonal_historical_model(2).risk_at(new_orleans)
        assert september > february

    def test_seasonal_kdes_cover_active_classes(self):
        kdes = seasonal_kdes(9)
        assert EventType.FEMA_HURRICANE in kdes
        assert EventType.NOAA_WIND in kdes
