"""Tests for repro.core.provisioning — Equation 4 and Figure 11."""

import pytest

from repro.core.provisioning import (
    CandidateLink,
    ProvisioningAnalyzer,
    best_new_peering,
    candidate_links,
)
from repro.geo.coords import GeoPoint
from repro.risk.model import RiskModel
from repro.topology.interdomain import InterdomainTopology
from repro.topology.network import Network, PoP
from repro.topology.peering import PeeringGraph


def chain_network() -> Network:
    """Four PoPs in a west-east chain; the middle hops are a detour."""
    net = Network("chain")
    net.add_pop(PoP("chain:a", "A", GeoPoint(39.0, -100.0)))
    net.add_pop(PoP("chain:b", "B", GeoPoint(41.5, -97.0)))
    net.add_pop(PoP("chain:c", "C", GeoPoint(41.5, -93.0)))
    net.add_pop(PoP("chain:d", "D", GeoPoint(39.0, -90.0)))
    net.add_link("chain:a", "chain:b")
    net.add_link("chain:b", "chain:c")
    net.add_link("chain:c", "chain:d")
    return net


def chain_model(gamma_h=1e5) -> RiskModel:
    shares = {"chain:a": 0.25, "chain:b": 0.25, "chain:c": 0.25, "chain:d": 0.25}
    oh = {"chain:a": 1e-3, "chain:b": 4e-2, "chain:c": 4e-2, "chain:d": 1e-3}
    of = {k: 0.0 for k in shares}
    return RiskModel(shares, oh, of, gamma_h=gamma_h)


class TestCandidateLinks:
    def test_direct_ad_link_is_candidate(self):
        candidates = candidate_links(chain_network(), reduction_threshold=0.15)
        pairs = {(c.pop_a, c.pop_b) for c in candidates}
        assert ("chain:a", "chain:d") in pairs

    def test_threshold_filters(self):
        none = candidate_links(chain_network(), reduction_threshold=0.9)
        assert none == []

    def test_length_cap_filters(self):
        capped = candidate_links(
            chain_network(), reduction_threshold=0.15, max_length_miles=100.0
        )
        assert capped == []

    def test_existing_links_excluded(self):
        candidates = candidate_links(chain_network(), reduction_threshold=0.0)
        pairs = {(c.pop_a, c.pop_b) for c in candidates}
        assert ("chain:a", "chain:b") not in pairs

    def test_mileage_reduction_computed(self):
        candidates = candidate_links(chain_network(), reduction_threshold=0.15)
        for c in candidates:
            assert 0.0 < c.mileage_reduction < 1.0
            assert c.length_miles < c.current_route_miles

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            candidate_links(chain_network(), reduction_threshold=1.0)
        with pytest.raises(ValueError):
            candidate_links(chain_network(), reduction_threshold=-0.1)

    def test_invalid_length_cap(self):
        with pytest.raises(ValueError):
            candidate_links(chain_network(), max_length_miles=0.0)


class TestAnalyzer:
    def test_baseline_positive(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        assert analyzer.aggregate_bit_risk() > 0.0

    def test_ranked_candidates_improve(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        ranked = analyzer.rank_candidates()
        assert ranked
        for rec in ranked:
            assert rec.aggregate_bit_risk <= rec.baseline_bit_risk + 1e-6
            assert rec.fraction_of_baseline <= 1.0 + 1e-9

    def test_ranking_monotone(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        ranked = analyzer.rank_candidates()
        totals = [r.aggregate_bit_risk for r in ranked]
        assert totals == sorted(totals)

    def test_best_single_link_bridges_the_detour(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        best = analyzer.best_single_link()
        assert best is not None
        assert {best.candidate.pop_a, best.candidate.pop_b} == {
            "chain:a",
            "chain:d",
        }

    def test_best_single_link_none_when_no_candidates(self):
        net = Network("tiny")
        net.add_pop(PoP("tiny:a", "A", GeoPoint(39.0, -100.0)))
        net.add_pop(PoP("tiny:b", "B", GeoPoint(39.0, -99.0)))
        net.add_link("tiny:a", "tiny:b")
        shares = {"tiny:a": 0.5, "tiny:b": 0.5}
        model = RiskModel(shares, dict.fromkeys(shares, 1e-3), dict.fromkeys(shares, 0.0))
        analyzer = ProvisioningAnalyzer(net, model)
        assert analyzer.best_single_link() is None

    def test_via_edge_score_matches_recomputation(self):
        """The via-edge composition must match a full re-analysis after
        actually adding the link."""
        net = chain_network()
        model = chain_model()
        analyzer = ProvisioningAnalyzer(net, model)
        best = analyzer.best_single_link()
        augmented = net.copy()
        augmented.add_link(best.candidate.pop_a, best.candidate.pop_b)
        recomputed = ProvisioningAnalyzer(augmented, model).aggregate_bit_risk()
        assert best.aggregate_bit_risk == pytest.approx(recomputed, rel=0.02)

    def test_greedy_monotone_decay(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        recs = analyzer.greedy_links(3)
        fractions = [r.fraction_of_baseline for r in recs]
        assert all(
            a >= b - 1e-9 for a, b in zip(fractions, fractions[1:])
        )
        assert fractions[0] < 1.0

    def test_greedy_invalid_count(self):
        analyzer = ProvisioningAnalyzer(chain_network(), chain_model())
        with pytest.raises(ValueError):
            analyzer.greedy_links(0)

    def test_greedy_does_not_mutate_original(self):
        net = chain_network()
        analyzer = ProvisioningAnalyzer(net, chain_model())
        analyzer.greedy_links(2)
        assert net.link_count == 3


class TestBestPeering:
    def build_world(self):
        r = Network("R", tier="regional", states=("NY",))
        r.add_pop(PoP("R:nyc", "New York", GeoPoint(40.71, -74.01)))
        r.add_pop(PoP("R:alb", "Albany", GeoPoint(42.65, -73.76)))
        r.add_link("R:nyc", "R:alb")

        t = Network("T")
        t.add_pop(PoP("T:nyc", "New York", GeoPoint(40.72, -74.00)))
        t.add_pop(PoP("T:bos", "Boston", GeoPoint(42.36, -71.06)))
        t.add_link("T:nyc", "T:bos")

        u = Network("U", tier="regional", states=("MA",))
        u.add_pop(PoP("U:bos", "Boston", GeoPoint(42.37, -71.05)))
        u.add_pop(PoP("U:alb", "Albany", GeoPoint(42.66, -73.77)))
        u.add_link("U:bos", "U:alb")

        peering = PeeringGraph()
        peering.add_peering("R", "T")
        peering.add_peering("U", "T")
        topology = InterdomainTopology([r, t, u], peering)
        shares = {
            "R:nyc": 0.6, "R:alb": 0.4,
            "T:nyc": 0.5, "T:bos": 0.5,
            "U:bos": 0.7, "U:alb": 0.3,
        }
        model = RiskModel(
            shares, dict.fromkeys(shares, 1e-3), dict.fromkeys(shares, 0.0)
        )
        return topology, model

    def test_recommends_colocated_unpeered_network(self):
        topology, model = self.build_world()
        rec = best_new_peering(topology, model, "R")
        assert rec is not None
        assert rec.peer == "U"
        assert rec.fraction_of_baseline <= 1.0

    def test_none_when_no_candidates(self):
        topology, model = self.build_world()
        rec = best_new_peering(topology, model, "U")
        # U already peers with T; R is co-located at Albany -> candidate.
        assert rec is not None and rec.peer == "R"

    def test_unknown_network(self):
        topology, model = self.build_world()
        with pytest.raises(KeyError):
            best_new_peering(topology, model, "ghost")
