"""Incremental KDE parity: append/retire patches vs from-scratch rebuild.

The streaming issue's core contract: a :class:`StreamingKDE` whose
event set was grown and shrunk through ``append_events`` /
``retire_events`` evaluates **bit for bit** like a fresh
:class:`GaussianKDE` built over the surviving events — the rebuild path
is the parity oracle.  The hypothesis test drives random interleavings
of appends and retirements (the shape of live ingest plus rolling
window slides) and pins tracked densities, grid fields and
fingerprints against the oracle at 1e-9 relative tolerance (and in
fact exact equality, which the implementation guarantees).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import BoundingBox
from repro.geo.grid import GeoGrid
from repro.stats.fieldcache import RiskFieldCache
from repro.stats.kde import GaussianKDE
from repro.stats.streaming import StreamingKDE

BANDWIDTH = 40.0

#: Event/query coordinates over the central US — wide enough that a
#: query row can be out of truncation reach of a whole batch, narrow
#: enough that most batches dirty at least one tracked row.
coords = st.tuples(
    st.floats(min_value=28.0, max_value=46.0),
    st.floats(min_value=-115.0, max_value=-75.0),
)


def _array(pairs) -> np.ndarray:
    return np.asarray(list(pairs), dtype=np.float64).reshape(-1, 2)


class TestConstruction:
    def test_dense_path_rejected(self):
        with pytest.raises(ValueError):
            StreamingKDE.from_array(
                _array([(35.0, -95.0)]), BANDWIDTH, cutoff_sigmas=None
            )

    def test_retire_out_of_range(self):
        kde = StreamingKDE.from_array(
            _array([(35.0, -95.0), (36.0, -96.0)]), BANDWIDTH
        )
        with pytest.raises(ValueError):
            kde.retire_events([5])
        with pytest.raises(ValueError):
            kde.retire_events([-1])

    def test_cannot_retire_every_event(self):
        kde = StreamingKDE.from_array(
            _array([(35.0, -95.0), (36.0, -96.0)]), BANDWIDTH
        )
        with pytest.raises(ValueError):
            kde.retire_events([0, 1])

    def test_empty_batches_are_noop_deltas(self):
        kde = StreamingKDE.from_array(_array([(35.0, -95.0)]), BANDWIDTH)
        before = kde.fingerprint
        assert not kde.append_events(_array([])).changed
        assert not kde.retire_events([]).changed
        assert kde.fingerprint == before


class TestIncrementalParity:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_appends_and_retires_match_rebuild(self, data):
        """Any interleaving of appends/retires == rebuild, bitwise."""
        events = data.draw(
            st.lists(coords, min_size=4, max_size=16), label="initial"
        )
        queries = _array(
            data.draw(st.lists(coords, min_size=3, max_size=10),
                      label="queries")
        )
        kde = StreamingKDE.from_array(_array(events), BANDWIDTH)
        # Register the tracked set cold so later calls exercise the
        # dirty-row patch path, not a fresh sweep.
        kde.tracked_density(queries)
        for _ in range(data.draw(st.integers(1, 4), label="ops")):
            retire = len(events) > 4 and data.draw(
                st.booleans(), label="retire?"
            )
            if retire:
                indices = data.draw(
                    st.lists(
                        st.integers(0, len(events) - 1),
                        min_size=1,
                        max_size=len(events) - 2,
                        unique=True,
                    ),
                    label="retire-rows",
                )
                kde.retire_events(indices)
                for row in sorted(set(indices), reverse=True):
                    events.pop(row)
            else:
                batch = data.draw(
                    st.lists(coords, min_size=1, max_size=5), label="append"
                )
                kde.append_events(_array(batch))
                events.extend(batch)
        oracle = GaussianKDE.from_array(_array(events), BANDWIDTH)
        incremental = kde.tracked_density(queries)
        rebuilt = oracle.density_array(queries)
        np.testing.assert_allclose(incremental, rebuilt, rtol=1e-9, atol=0.0)
        # The implementation promises more than the 1e-9 contract:
        assert np.array_equal(incremental, rebuilt)
        assert kde.fingerprint == oracle.fingerprint
        assert kde.n_events == oracle.n_events

    def test_delta_reports_patch_and_dirty_rows(self):
        base = [(35.0, -95.0), (35.2, -95.1), (43.0, -78.0)]
        kde = StreamingKDE.from_array(_array(base), BANDWIDTH)
        delta = kde.append_events(_array([(35.1, -94.9)]))
        assert delta.changed
        assert delta.appended == 1 and delta.retired == 0
        # A row next to the new event is dirty; one far outside the
        # truncation reach is not.
        mask = delta.dirty_mask(_array([(35.05, -95.0), (46.5, -68.0)]))
        assert mask.tolist() == [True, False]

    def test_clean_rows_bitwise_stable_across_append(self):
        """A query out of reach keeps its *kernel sum* unchanged; its
        density moves only by the normaliser (and stays exactly 0.0
        when the sum is 0)."""
        kde = StreamingKDE.from_array(
            _array([(35.0, -95.0), (35.3, -95.2)]), BANDWIDTH
        )
        queries = _array([(46.9, -68.0)])  # far from everything
        assert kde.tracked_density(queries)[0] == 0.0
        kde.append_events(_array([(36.0, -96.0)]))
        assert kde.tracked_density(queries)[0] == 0.0


class TestGridFieldsAndDeltaCache:
    # Wide enough that one appended event's truncation-reach
    # neighborhood dirties well under half the cells — the threshold
    # below which the cache persists a delta instead of a full field.
    GRID = GeoGrid(BoundingBox(25.0, -115.0, 48.0, -70.0), 12, 16)

    def test_evaluate_grid_matches_rebuild_after_patches(self, tmp_path):
        store = RiskFieldCache(tmp_path / "grid-cache")
        events = [(34.0, -97.0), (35.0, -95.0), (36.5, -93.0)]
        kde = StreamingKDE.from_array(_array(events), BANDWIDTH)
        kde.evaluate_grid(self.GRID, cache=store)  # parent entry
        kde.append_events(_array([(35.5, -94.5)]))
        events.append((35.5, -94.5))
        kde.retire_events([0])
        events.pop(0)
        field = kde.evaluate_grid(self.GRID, cache=store)
        oracle = GaussianKDE.from_array(_array(events), BANDWIDTH)
        expected = oracle.evaluate_grid(self.GRID, cache=None)
        np.testing.assert_allclose(
            field.values, expected.values, rtol=1e-9, atol=0.0
        )

    def test_incremental_write_is_a_delta_chained_off_parent(self, tmp_path):
        from repro.stats.fieldcache import grid_field_key

        store = RiskFieldCache(tmp_path / "chain-cache")
        kde = StreamingKDE.from_array(
            _array([(34.0, -97.0), (35.0, -95.0)]), BANDWIDTH
        )
        kde.evaluate_grid(self.GRID, cache=store)
        parent_key = grid_field_key(kde.fingerprint, self.GRID)
        assert store.chain_depth("grid", parent_key) == 0
        kde.append_events(_array([(34.5, -96.0)]))
        field = kde.evaluate_grid(self.GRID, cache=store)
        child_key = grid_field_key(kde.fingerprint, self.GRID)
        assert store.chain_depth("grid", child_key) == 1
        # The chained entry resolves to the live field up to the one
        # documented rounding on rescaled clean cells (dirty cells are
        # stored verbatim; clean ones carry over via the normaliser
        # ratio, exact where the kernel sum is 0).
        resolved = store.get("grid", child_key)
        np.testing.assert_allclose(
            resolved, field.values.ravel(), rtol=1e-12, atol=0.0
        )
