"""Shared fixtures.

Most tests avoid the full synthetic corpus (census + 176k disaster
events + KDE sweeps) and work on small hand-built networks with explicit
risk numbers; a few session-scoped fixtures expose the real corpus for
integration tests.
"""

from __future__ import annotations

import os

import pytest

from repro.geo.coords import GeoPoint
from repro.risk.model import RiskModel
from repro.topology.network import Network, NetworkTier, PoP


@pytest.fixture(scope="session", autouse=True)
def _isolated_field_cache(tmp_path_factory):
    """Point the persistent risk-field cache at a per-session tmp dir.

    Keeps the suite hermetic: runs never read stale fields from (or
    leak entries into) the developer's ~/.cache/riskroute.
    """
    cache_dir = tmp_path_factory.mktemp("riskroute-cache")
    previous = os.environ.get("RISKROUTE_CACHE_DIR")
    os.environ["RISKROUTE_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("RISKROUTE_CACHE_DIR", None)
    else:
        os.environ["RISKROUTE_CACHE_DIR"] = previous


def build_diamond_network() -> Network:
    """Four PoPs in a diamond; two routes between west and east.

    Layout (approximately)::

            north (41.5, -95)
           /               \\
    west (39, -100)     east (39, -90)
           \\               /
            south (37, -95)

    The south transit PoP is on the geometrically *shorter* corridor but
    is risky, so shortest-path routing and RiskRoute disagree.
    """
    network = Network("diamond", tier=NetworkTier.TIER1)
    network.add_pop(PoP("diamond:west", "West", GeoPoint(39.0, -100.0)))
    network.add_pop(PoP("diamond:east", "East", GeoPoint(39.0, -90.0)))
    network.add_pop(PoP("diamond:north", "North", GeoPoint(41.5, -95.0)))
    network.add_pop(PoP("diamond:south", "South", GeoPoint(37.0, -95.0)))
    network.add_link("diamond:west", "diamond:north")
    network.add_link("diamond:north", "diamond:east")
    network.add_link("diamond:west", "diamond:south")
    network.add_link("diamond:south", "diamond:east")
    return network


def build_diamond_model(
    south_risk: float = 5e-2,
    north_risk: float = 1e-3,
    gamma_h: float = 1e5,
    gamma_f: float = 1e3,
) -> RiskModel:
    """A risk model for the diamond: the south transit PoP is risky."""
    shares = {
        "diamond:west": 0.3,
        "diamond:east": 0.3,
        "diamond:north": 0.2,
        "diamond:south": 0.2,
    }
    oh = {
        "diamond:west": 1e-3,
        "diamond:east": 1e-3,
        "diamond:north": north_risk,
        "diamond:south": south_risk,
    }
    of = {pop_id: 0.0 for pop_id in shares}
    return RiskModel(shares, oh, of, gamma_h=gamma_h, gamma_f=gamma_f)


@pytest.fixture
def diamond_network() -> Network:
    return build_diamond_network()


@pytest.fixture
def diamond_model() -> RiskModel:
    return build_diamond_model()


@pytest.fixture(scope="session")
def teliasonera():
    """A real corpus network (15 PoPs), built once per session."""
    from repro.topology.zoo import network_by_name

    return network_by_name("Teliasonera")


@pytest.fixture(scope="session")
def teliasonera_model(teliasonera):
    """The full default risk model for Teliasonera (KDE + census)."""
    return RiskModel.for_network(teliasonera)
