"""Protocol edges under failure (issue satellites).

Covers the paths between a healthy round trip and a chaos storm:
the server dying mid-request, a client shipping an oversized line,
and a reply deadline expiring while the batch is already on the
executor.
"""

from __future__ import annotations

import json
import random
import socket
import time

import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.server import (
    RetryPolicy,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


class _Slow:
    """Wrap a service's execute_batch with a fixed delay (on the
    service thread), to hold the worker busy deterministically."""

    def __init__(self, server, delay: float) -> None:
        self._orig = server.service.execute_batch
        self._delay = delay

    def __call__(self, batch):
        time.sleep(self._delay)
        return self._orig(batch)


class TestServerKilledMidRequest:
    def test_raw_socket_sees_clean_close_not_hang(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.0),
        )
        host, port = thread.start()
        thread.server.service.execute_batch = _Slow(thread.server, 0.4)
        sock = socket.create_connection((host, port), timeout=10)
        stream = sock.makefile("rwb")
        try:
            stream.write(
                b'{"id": 9, "op": "route", "source": "diamond:west", '
                b'"target": "diamond:east"}\n'
            )
            stream.flush()
            time.sleep(0.1)  # request is in flight on the executor
            thread.stop(drain=False)  # hard kill: abandons queued work
            # The connection closes cleanly — EOF, not a hang and not a
            # half-written reply.
            assert stream.readline() == b""
        finally:
            sock.close()

    def test_client_maps_kill_to_connection_error(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.0),
        )
        host, port = thread.start()
        thread.server.service.execute_batch = _Slow(thread.server, 0.4)
        client = RiskRouteClient(host, port, timeout=10)

        import threading

        killer = threading.Timer(0.1, thread.stop, kwargs={"drain": False})
        killer.start()
        try:
            with pytest.raises(ConnectionError):
                client.route("diamond:west", "diamond:east")
            assert client.closed  # poisoned socket: next call reconnects
        finally:
            killer.cancel()
            client.close()
            thread.stop()


class TestOversizedRequestFromClient:
    def test_plain_client_gets_too_large_then_clean_error(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(max_line_bytes=2048),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port, timeout=10) as client:
                with pytest.raises(ServerError) as err:
                    client.route("diamond:west", "x" * 4096)
                assert err.value.code == "too_large"
                # The server closed the oversized connection; the next
                # call fails cleanly as a connection error...
                with pytest.raises(ConnectionError):
                    client.route("diamond:west", "diamond:east")
                # ...and the one after that reconnects and succeeds.
                result = client.route("diamond:west", "diamond:east")
                assert result["path"][-1] == "diamond:east"
                assert client.reconnects == 1
        finally:
            thread.stop()

    def test_retry_client_heals_transparently_after_too_large(
        self, diamond_network, diamond_model
    ):
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(max_line_bytes=2048),
        )
        host, port = thread.start()
        try:
            client = RiskRouteClient(
                host, port, timeout=10,
                retry=RetryPolicy(
                    attempts=3, base_delay=0.01, max_delay=0.05
                ),
                rng=random.Random(5),
            )
            with client:
                with pytest.raises(ServerError) as err:
                    client.route("diamond:west", "y" * 4096)
                assert err.value.code == "too_large"
                # The dead connection is retried away without surfacing.
                result = client.route("diamond:west", "diamond:east")
                assert result["path"][0] == "diamond:west"
                assert client.reconnects == 1
        finally:
            thread.stop()


class TestDeadlineExpiresOnExecutor:
    def test_in_flight_request_still_gets_exactly_one_reply(
        self, diamond_network, diamond_model
    ):
        # The deadline guards *queue* time: once a batch is on the
        # executor its requests are served to completion — the client
        # gets the computed answer, never a trailing duplicate timeout.
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.15),
        )
        host, port = thread.start()
        thread.server.service.execute_batch = _Slow(thread.server, 0.4)
        sock = socket.create_connection((host, port), timeout=10)
        stream = sock.makefile("rwb")
        try:
            stream.write(
                b'{"id": 1, "op": "route", "source": "diamond:west", '
                b'"target": "diamond:east"}\n'
            )
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["id"] == 1
            assert reply["ok"] is True  # served despite expiring mid-run
            # Exactly one reply: nothing else arrives for this request.
            sock.settimeout(0.3)
            with pytest.raises(socket.timeout):
                stream.readline()
            assert thread.server.stats.timeouts == 0
        finally:
            sock.close()
            thread.stop()

    def test_queued_request_behind_stalled_batch_times_out(
        self, diamond_network, diamond_model
    ):
        # Companion case: a request that never reached the executor
        # before its deadline gets the typed timeout, exactly once.
        thread = ServerThread(
            RoutingSession(diamond_network, diamond_model),
            ServerConfig(request_timeout=0.15),
        )
        host, port = thread.start()
        thread.server.service.execute_batch = _Slow(thread.server, 0.5)
        line = (
            b'{"id": %d, "op": "route", "source": "diamond:west", '
            b'"target": "diamond:east"}\n'
        )
        s1 = socket.create_connection((host, port), timeout=10)
        f1 = s1.makefile("rwb")
        s2 = socket.create_connection((host, port), timeout=10)
        f2 = s2.makefile("rwb")
        try:
            f1.write(line % 1)
            f1.flush()
            time.sleep(0.1)  # worker now inside the slow batch
            f2.write(line % 2)
            f2.flush()       # queued; will expire before the worker frees
            assert json.loads(f1.readline())["ok"] is True
            reply2 = json.loads(f2.readline())
            assert reply2["ok"] is False
            assert reply2["error"]["code"] == "timeout"
            assert thread.server.stats.timeouts == 1
        finally:
            s1.close()
            s2.close()
            thread.stop()
