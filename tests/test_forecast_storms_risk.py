"""Tests for repro.forecast.storms and repro.forecast.risk."""

import pytest

from repro.forecast.advisory import advisories_for_track, advisory_text
from repro.forecast.risk import (
    RHO_HURRICANE,
    RHO_TROPICAL,
    ForecastSnapshot,
    snapshot_from_advisory,
    snapshot_from_text,
    storm_scope,
)
from repro.forecast.storms import (
    PAPER_ADVISORY_COUNTS,
    case_study_storms,
    hurricane_irene,
    hurricane_katrina,
    hurricane_sandy,
    storm_advisories,
)
from repro.geo.coords import GeoPoint
from repro.geo.distance import destination_point


class TestStormTracks:
    def test_advisory_counts_match_paper(self):
        assert len(storm_advisories("Katrina")) == 61
        assert len(storm_advisories("Irene")) == 70
        assert len(storm_advisories("Sandy")) == 60

    def test_paper_counts_constant(self):
        assert PAPER_ADVISORY_COUNTS == {"Katrina": 61, "Irene": 70, "Sandy": 60}

    def test_unknown_storm(self):
        with pytest.raises(KeyError):
            storm_advisories("Bob")

    def test_katrina_peaks_category5(self):
        peak = hurricane_katrina().peak_intensity()
        assert peak.max_wind_mph >= 155.0

    def test_irene_moves_north(self):
        fixes = hurricane_irene().fixes()
        assert fixes[-1].center.lat > fixes[0].center.lat + 15

    def test_sandy_dates(self):
        track = hurricane_sandy()
        assert track.start_time.year == 2012
        assert track.start_time.month == 10

    def test_katrina_dates_match_footnote(self):
        track = hurricane_katrina()
        assert track.start_time.day == 23
        assert track.end_time.day == 30

    def test_all_storms_parseable(self):
        """Every generated advisory must survive the NLP parser."""
        for name in case_study_storms():
            for advisory in storm_advisories(name):
                snapshot = snapshot_from_text(advisory_text(advisory))
                assert snapshot.tropical_radius_miles > 0

    def test_advisory_numbering(self):
        advisories = storm_advisories("Sandy")
        assert [a.number for a in advisories] == list(range(1, 61))


class TestForecastSnapshot:
    CENTER = GeoPoint(30.0, -80.0)

    def snapshot(self):
        return ForecastSnapshot(
            center=self.CENTER,
            hurricane_radius_miles=50.0,
            tropical_radius_miles=150.0,
        )

    def test_zone_classification(self):
        snap = self.snapshot()
        inside_h = destination_point(self.CENTER, 90.0, 30.0)
        inside_t = destination_point(self.CENTER, 90.0, 100.0)
        outside = destination_point(self.CENTER, 90.0, 300.0)
        assert snap.zone_of(inside_h) == "hurricane"
        assert snap.zone_of(inside_t) == "tropical"
        assert snap.zone_of(outside) == "clear"

    def test_risk_values(self):
        snap = self.snapshot()
        assert snap.risk_at(self.CENTER) == RHO_HURRICANE
        edge_t = destination_point(self.CENTER, 0.0, 100.0)
        assert snap.risk_at(edge_t) == RHO_TROPICAL
        far = destination_point(self.CENTER, 0.0, 500.0)
        assert snap.risk_at(far) == 0.0

    def test_paper_rho_values(self):
        assert RHO_TROPICAL == 50.0
        assert RHO_HURRICANE == 100.0

    def test_radii_validation(self):
        with pytest.raises(ValueError):
            ForecastSnapshot(self.CENTER, 200.0, 100.0)

    def test_rho_ordering_validation(self):
        with pytest.raises(ValueError):
            ForecastSnapshot(
                self.CENTER, 10.0, 50.0, rho_tropical=100.0, rho_hurricane=50.0
            )

    def test_snapshot_from_advisory(self):
        advisory = storm_advisories("Irene")[40]
        snap = snapshot_from_advisory(advisory)
        assert snap.center == advisory.center
        assert snap.tropical_radius_miles == advisory.tropical_radius_miles


class TestStormScope:
    def test_scope_levels(self):
        advisories = storm_advisories("Katrina")
        new_orleans = GeoPoint(29.95, -90.07)
        seattle = GeoPoint(47.61, -122.33)
        scope = storm_scope(advisories, [new_orleans, seattle])
        assert scope[new_orleans] == "hurricane"
        assert scope[seattle] == "clear"

    def test_tropical_only_location(self):
        advisories = storm_advisories("Katrina")
        # Far inland from the track but inside tropical radius at landfall.
        jackson = GeoPoint(32.30, -90.18)
        scope = storm_scope(advisories, [jackson])
        assert scope[jackson] in ("tropical", "hurricane")
