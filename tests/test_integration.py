"""End-to-end integration tests over the real corpus.

These exercise the full pipeline — topology, census assignment, disaster
KDEs, forecast parsing, routing, ratios, provisioning — on the smaller
corpus networks, asserting the paper's qualitative shapes.
"""

import pytest

from repro.core.interdomain import InterdomainRouter, regional_pair_population
from repro.core.provisioning import ProvisioningAnalyzer, best_new_peering
from repro.core.ratios import intradomain_ratios
from repro.core.riskroute import RiskRouter
from repro.forecast.advisory import advisory_text
from repro.forecast.risk import snapshot_from_text
from repro.forecast.storms import storm_advisories
from repro.risk.forecasted import ForecastedRiskModel
from repro.risk.model import RiskModel
from repro.topology.interdomain import InterdomainTopology
from repro.topology.peering import corpus_peering
from repro.topology.zoo import network_by_name, regional_networks, tier1_networks


@pytest.fixture(scope="module")
def deutsche_router():
    network = network_by_name("Deutsche")
    model = RiskModel.for_network(network)
    return network, model, RiskRouter(network.distance_graph(), model)


class TestTable2Shape:
    def test_gamma_monotonicity_on_deutsche(self, deutsche_router):
        network, model, _ = deutsche_router
        graph = network.distance_graph()
        r5 = intradomain_ratios(RiskRouter(graph, model))
        r6 = intradomain_ratios(
            RiskRouter(graph, model.with_gammas(1e6, 1e3))
        )
        assert r6.risk_reduction_ratio >= r5.risk_reduction_ratio
        assert r6.distance_increase_ratio >= r5.distance_increase_ratio
        assert r5.risk_reduction_ratio > 0.0

    def test_ratios_in_sane_range(self, deutsche_router):
        _, _, router = deutsche_router
        result = intradomain_ratios(router)
        assert 0.0 < result.risk_reduction_ratio < 0.6
        assert 0.0 <= result.distance_increase_ratio < 0.6


class TestForecastResponse:
    def test_storm_raises_risk_ratio(self):
        """A hurricane over transit PoPs must increase the measurable
        benefit of RiskRoute for an affected network.  Tinet's east-coast
        corridor nodes carry transit traffic, so Irene's mid-track
        advisories (Carolinas/Virginia in scope) create avoidable risk."""
        network = network_by_name("Tinet")
        model = RiskModel.for_network(network)
        graph = network.distance_graph()
        calm = intradomain_ratios(RiskRouter(graph, model))

        mid_track = storm_advisories("Irene")[55]
        snapshot = snapshot_from_text(advisory_text(mid_track))
        forecast = ForecastedRiskModel([snapshot])
        stormy_model = model.with_forecast_risk(forecast.pop_risks(network))
        stormy = intradomain_ratios(RiskRouter(graph, stormy_model))
        assert stormy.risk_reduction_ratio > calm.risk_reduction_ratio

    def test_forecast_risk_zero_before_storm_reaches_us(self, deutsche_router):
        network, _, _ = deutsche_router
        early = storm_advisories("Sandy")[0]
        snapshot = snapshot_from_text(advisory_text(early))
        forecast = ForecastedRiskModel([snapshot])
        risks = forecast.pop_risks(network)
        assert all(v == 0.0 for v in risks.values())


class TestProvisioningShape:
    def test_greedy_decay_on_sprint(self):
        network = network_by_name("Sprint")
        analyzer = ProvisioningAnalyzer(network, RiskModel.for_network(network))
        recs = analyzer.greedy_links(3)
        assert len(recs) == 3
        fractions = [r.fraction_of_baseline for r in recs]
        assert fractions[0] < 1.0
        assert fractions == sorted(fractions, reverse=True)


class TestInterdomainShape:
    @pytest.fixture(scope="class")
    def world(self):
        networks = [
            network_by_name(n)
            for n in ("Level3", "Sprint", "ATT", "Tinet", "Digex", "Epoch")
        ]
        topology = InterdomainTopology(networks, corpus_peering())
        model = RiskModel.for_interdomain(topology)
        return topology, model

    def test_regional_ratios(self, world):
        topology, model = world
        router = InterdomainRouter(topology, model)
        destinations = regional_pair_population(topology)
        result = router.regional_ratios("Digex", destinations)
        assert result.pair_count > 0
        assert 0.0 <= result.risk_reduction_ratio < 0.8

    def test_best_peering_suggests_unpeered_tier1(self, world):
        topology, model = world
        rec = best_new_peering(topology, model, "Digex")
        assert rec is not None
        # Digex peers with Level3 + Deutsche; ATT/Tinet are candidates.
        assert rec.peer in ("ATT", "Tinet", "Sprint", "Epoch")
        assert rec.fraction_of_baseline <= 1.0


class TestCorpusSanity:
    def test_regional_models_build(self):
        for network in regional_networks()[:4]:
            model = RiskModel.for_network(network)
            assert sum(model.share(p) for p in model.pop_ids()) == pytest.approx(
                1.0
            )

    def test_tier1_risk_spread(self):
        """Historical risk must vary across a nationwide footprint, or
        risk-aware routing would be pointless."""
        network = network_by_name("Tinet")
        model = RiskModel.for_network(network)
        risks = [model.historical_risk(p) for p in model.pop_ids()]
        assert max(risks) > 3.0 * min(risks)
