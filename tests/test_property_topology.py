"""Property-based tests for topology construction and traffic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.builders import build_network, gabriel_pairs
from repro.topology.cities import ALL_CITIES
from repro.traffic.gravity import TrafficMatrix


city_subsets = st.lists(
    st.sampled_from(list(ALL_CITIES[:80])), min_size=4, max_size=25, unique=True
)


class TestBuilderProperties:
    @given(city_subsets, st.floats(2.0, 4.0), st.integers(4, 30))
    @settings(max_examples=30, deadline=None)
    def test_built_networks_always_connected(self, cities, degree, count):
        network = build_network("prop", cities, count, degree)
        assert network.pop_count == count
        assert network.is_connected()

    @given(city_subsets, st.floats(2.0, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_no_duplicate_links(self, cities, degree):
        network = build_network("prop", cities, len(cities), degree)
        endpoints = [link.endpoints for link in network.links()]
        assert len(endpoints) == len(set(endpoints))

    @given(city_subsets)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_construction(self, cities):
        a = build_network("prop", cities, len(cities), 3.0)
        b = build_network("prop", cities, len(cities), 3.0)
        assert sorted(l.endpoints for l in a.links()) == sorted(
            l.endpoints for l in b.links()
        )

    @given(city_subsets, st.floats(2.0, 3.5))
    @settings(max_examples=30, deadline=None)
    def test_degree_near_target(self, cities, degree):
        count = len(cities)
        network = build_network("prop", cities, count, degree)
        # Never below tree density; never wildly above the target.
        assert network.link_count >= count - 1
        assert network.average_outdegree() <= degree + 2.5


class TestGabrielProperties:
    coords = st.lists(
        st.tuples(st.floats(25.0, 49.0), st.floats(-124.0, -67.0)),
        min_size=2,
        max_size=25,
        unique=True,
    )

    @given(coords)
    @settings(max_examples=40, deadline=None)
    def test_gabriel_connected(self, pairs):
        lat = np.array([a for a, _ in pairs])
        lon = np.array([b for _, b in pairs])
        edges = gabriel_pairs(lat, lon)
        parent = list(range(len(pairs)))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, j in edges:
            parent[find(i)] = find(j)
        assert len({find(i) for i in range(len(pairs))}) == 1

    @given(coords)
    @settings(max_examples=40, deadline=None)
    def test_gabriel_edges_valid(self, pairs):
        lat = np.array([a for a, _ in pairs])
        lon = np.array([b for _, b in pairs])
        for i, j in gabriel_pairs(lat, lon):
            assert 0 <= i < j < len(pairs)


class TestTrafficMatrixProperties:
    @given(st.integers(2, 10), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_normalisation_invariant(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.0, 5.0, size=(n, n))
        demands = (raw + raw.T) / 2.0
        np.fill_diagonal(demands, 0.0)
        if demands.sum() == 0.0:
            demands[0, 1] = demands[1, 0] = 1.0
        matrix = TrafficMatrix([f"p{i}" for i in range(n)], demands)
        assert abs(matrix.total_demand() - 1.0) < 1e-12
        total = sum(
            matrix.demand(f"p{i}", f"p{j}")
            for i in range(n)
            for j in range(n)
            if i != j
        )
        assert abs(total - 1.0) < 1e-9
