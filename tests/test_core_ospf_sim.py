"""Tests for repro.core.ospf and repro.core.simulation."""

import pytest

from repro.core.ospf import MAX_OSPF_COST, export_ospf_weights, ospf_fidelity
from repro.core.simulation import (
    DAMAGE_RADIUS_MILES,
    SimulatedDisaster,
    failed_pops,
    route_survival,
    sample_disasters,
)
from repro.disasters.events import EventType
from repro.geo.coords import GeoPoint
from repro.topology.network import Network, PoP
from tests.conftest import build_diamond_model, build_diamond_network


class TestOspfExport:
    def test_costs_cover_all_links(self, diamond_network, diamond_model):
        table = export_ospf_weights(diamond_network, diamond_model)
        assert len(table.costs) == diamond_network.link_count
        for cost in table.costs.values():
            assert 1 <= cost <= MAX_OSPF_COST

    def test_riskier_link_costs_more(self, diamond_network, diamond_model):
        table = export_ospf_weights(diamond_network, diamond_model)
        # Same geometry, riskier endpoint: south links beat north links.
        north = table.cost_of("diamond:west", "diamond:north")
        south = table.cost_of("diamond:west", "diamond:south")
        assert south > north

    def test_cost_lookup_order_insensitive(self, diamond_network, diamond_model):
        table = export_ospf_weights(diamond_network, diamond_model)
        assert table.cost_of("diamond:north", "diamond:west") == table.cost_of(
            "diamond:west", "diamond:north"
        )
        with pytest.raises(KeyError):
            table.cost_of("diamond:west", "diamond:east")

    def test_as_graph_routes_risk_aware(self, diamond_network, diamond_model):
        from repro.graph.shortest_path import shortest_path

        table = export_ospf_weights(diamond_network, diamond_model)
        path = shortest_path(
            table.as_graph(), "diamond:west", "diamond:east"
        )
        assert "diamond:south" not in path

    def test_config_text(self, diamond_network, diamond_model):
        table = export_ospf_weights(diamond_network, diamond_model)
        text = table.config_text()
        assert "ip ospf cost" in text
        assert "diamond" in text

    def test_empty_network_rejected(self, diamond_model):
        lonely = Network("lonely")
        lonely.add_pop(PoP("lonely:x", "X", GeoPoint(40.0, -100.0)))
        with pytest.raises(ValueError):
            export_ospf_weights(lonely, diamond_model)

    def test_fidelity_bounds(self, diamond_network, diamond_model):
        fidelity = ospf_fidelity(diamond_network, diamond_model, sample_pairs=6)
        assert fidelity >= 1.0 - 1e-9
        assert fidelity < 1.5

    def test_fidelity_validation(self, diamond_network, diamond_model):
        with pytest.raises(ValueError):
            ospf_fidelity(diamond_network, diamond_model, sample_pairs=0)


class TestDisasterSampling:
    def test_counts_and_radii(self):
        disasters = sample_disasters(100, seed=1)
        assert len(disasters) == 100
        for disaster in disasters:
            assert disaster.radius_miles == DAMAGE_RADIUS_MILES[
                disaster.event_type
            ]

    def test_deterministic(self):
        a = sample_disasters(30, seed=5)
        b = sample_disasters(30, seed=5)
        assert a == b

    def test_class_restriction(self):
        disasters = sample_disasters(
            50, seed=2, event_types=[EventType.FEMA_HURRICANE]
        )
        assert all(
            d.event_type == EventType.FEMA_HURRICANE for d in disasters
        )

    def test_wind_dominates_unrestricted(self):
        disasters = sample_disasters(500, seed=3)
        wind = sum(
            1 for d in disasters if d.event_type == EventType.NOAA_WIND
        )
        assert wind / 500 > 0.6  # 143k of 176k events are wind

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_disasters(0)
        with pytest.raises(ValueError):
            sample_disasters(5, event_types=["typhoon"])


class TestFailureInjection:
    def test_failed_pops_radius(self, diamond_network):
        disaster = SimulatedDisaster(
            EventType.FEMA_STORM, GeoPoint(37.0, -95.0), 50.0
        )
        failed = failed_pops(diamond_network, disaster)
        assert failed == {"diamond:south"}

    def test_no_failures_far_away(self, diamond_network):
        disaster = SimulatedDisaster(
            EventType.FEMA_STORM, GeoPoint(47.0, -70.0), 50.0
        )
        assert failed_pops(diamond_network, disaster) == set()

    def test_survival_prefers_riskroute(self, diamond_network, diamond_model):
        """Disasters at the risky transit PoP: RiskRoute (which avoids
        it) must survive at least as often as shortest path."""
        disasters = [
            SimulatedDisaster(
                EventType.FEMA_STORM, GeoPoint(37.0, -95.0), 60.0
            )
        ] * 3
        report = route_survival(
            diamond_network, diamond_model, disasters, sample_pairs=12
        )
        assert report.riskroute_survival >= report.shortest_survival
        assert 0.0 <= report.shortest_survival <= 1.0

    def test_survival_on_corpus_network(self, teliasonera, teliasonera_model):
        disasters = sample_disasters(150, seed=7)
        report = route_survival(
            teliasonera, teliasonera_model.with_gammas(1e6, 1e3), disasters
        )
        assert report.riskroute_survival >= report.shortest_survival - 0.01

    def test_survival_validation(self, diamond_network, diamond_model):
        with pytest.raises(ValueError):
            route_survival(diamond_network, diamond_model, [])
        with pytest.raises(ValueError):
            route_survival(
                diamond_network,
                diamond_model,
                sample_disasters(3),
                sample_pairs=0,
            )

    def test_all_survive_when_untouched(self, diamond_network, diamond_model):
        disasters = [
            SimulatedDisaster(
                EventType.NOAA_WIND, GeoPoint(48.0, -70.0), 10.0
            )
        ]
        report = route_survival(diamond_network, diamond_model, disasters)
        assert report.shortest_survival == 1.0
        assert report.riskroute_survival == 1.0
