"""Tests for repro.traffic (gravity matrix + weighted evaluation)."""

import numpy as np
import pytest

from repro.core.riskroute import RiskRouter
from repro.traffic.gravity import TrafficMatrix, gravity_matrix
from repro.traffic.weighted import bit_risk_volume, traffic_weighted_ratios
from tests.conftest import build_diamond_model, build_diamond_network


class TestTrafficMatrix:
    def square(self):
        demands = np.array(
            [
                [0.0, 2.0, 1.0],
                [2.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
        return TrafficMatrix(["a", "b", "c"], demands)

    def test_normalised(self):
        matrix = self.square()
        assert matrix.total_demand() == pytest.approx(1.0)
        assert matrix.demand("a", "b") == pytest.approx(0.25)

    def test_symmetry_required(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "b"], bad)

    def test_self_demand_rejected(self):
        bad = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "b"], bad)

    def test_negative_rejected(self):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "b"], bad)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "b"], np.zeros((3, 3)))

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "b"], np.zeros((2, 2)))

    def test_duplicate_ids_rejected(self):
        demands = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            TrafficMatrix(["a", "a"], demands)

    def test_unknown_pop(self):
        with pytest.raises(KeyError):
            self.square().demand("a", "zzz")

    def test_heaviest_pairs(self):
        top = self.square().heaviest_pairs(1)
        assert top == [("a", "b", pytest.approx(0.25))]

    def test_as_array_is_copy(self):
        matrix = self.square()
        arr = matrix.as_array()
        arr[0, 1] = 999.0
        assert matrix.demand("a", "b") == pytest.approx(0.25)


class TestGravity:
    def test_builds_for_corpus_network(self, teliasonera):
        matrix = gravity_matrix(teliasonera)
        assert matrix.total_demand() == pytest.approx(1.0)
        assert len(matrix.pop_ids) == teliasonera.pop_count

    def test_population_products_dominate(self, teliasonera):
        matrix = gravity_matrix(teliasonera, beta=0.0)
        top_pair = matrix.heaviest_pairs(1)[0]
        # With beta=0 the top pair joins the two most-populous PoPs.
        from repro.risk.impact import network_impact_model

        impact = network_impact_model(teliasonera)
        ranked = sorted(
            teliasonera.pop_ids(), key=lambda p: -impact.share(p)
        )
        assert set(top_pair[:2]) == set(ranked[:2])

    def test_distance_attenuation(self, teliasonera):
        near_sighted = gravity_matrix(teliasonera, beta=2.0)
        flat = gravity_matrix(teliasonera, beta=0.0)
        # NYC-Newark (9 miles apart) gains weight as beta grows.
        pair = ("Teliasonera:New York, NY", "Teliasonera:Newark, NJ")
        assert near_sighted.demand(*pair) > flat.demand(*pair)

    def test_validation(self, teliasonera):
        with pytest.raises(ValueError):
            gravity_matrix(teliasonera, beta=-1.0)
        with pytest.raises(ValueError):
            gravity_matrix(teliasonera, distance_floor_miles=0.0)


class TestWeightedEvaluation:
    def test_weighted_ratios_on_diamond(self, diamond_network, diamond_model):
        router = RiskRouter(diamond_network.distance_graph(), diamond_model)
        matrix = gravity_matrix(diamond_network)
        result = traffic_weighted_ratios(router, matrix)
        assert result.ratios.pair_count > 0
        assert 0.0 <= result.ratios.risk_reduction_ratio < 1.0
        assert result.volume_reduction >= 0.0

    def test_volume_ordering(self, diamond_network, diamond_model):
        router = RiskRouter(diamond_network.distance_graph(), diamond_model)
        matrix = gravity_matrix(diamond_network)
        risky = bit_risk_volume(router, matrix, risk_aware=True)
        baseline = bit_risk_volume(router, matrix, risk_aware=False)
        assert risky <= baseline + 1e-9

    def test_weighted_vs_uniform_differ(self, teliasonera, teliasonera_model):
        from repro.core.ratios import intradomain_ratios

        router = RiskRouter(
            teliasonera.distance_graph(),
            teliasonera_model.with_gammas(1e6, 1e3),
        )
        uniform = intradomain_ratios(router)
        weighted = traffic_weighted_ratios(router, gravity_matrix(teliasonera))
        # Same ballpark, but the weighting genuinely changes the answer.
        assert weighted.ratios.risk_reduction_ratio != pytest.approx(
            uniform.risk_reduction_ratio, abs=1e-4
        )
        assert (
            0.2
            < weighted.ratios.risk_reduction_ratio
            / max(uniform.risk_reduction_ratio, 1e-9)
            < 5.0
        )
