"""Placement-map properties: rendezvous replication vs PR 6 affinity.

Pure-function tests over :func:`repro.server.shards.shard_of` and
:func:`repro.server.shards.replicas_of` — no processes, no sockets.
The hypothesis suites pin the two contracts replication rests on:

* ``replicas=1`` *is* PR 6 — the modulo placement, bit for bit, so
  existing single-replica deployments cannot see a single key move;
* ``replicas>=2`` is rendezvous (highest-random-weight) hashing —
  adding a shard moves only the keys the new shard wins, and growing
  the replica count only appends to each key's replica set.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import Request
from repro.server.shards import replicas_of, shard_of

pytestmark = pytest.mark.timeout(60)


def _pair_request(source: str, target: str) -> Request:
    return Request(
        op="pair", id=1, params={"source": source, "target": target}, v=2
    )


def _params_request(sources) -> Request:
    return Request(op="ratios", id=1, params={"sources": sources}, v=2)


_pop_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)


class TestSingleReplicaIsLegacyRouting:
    @given(
        source=_pop_ids,
        target=_pop_ids,
        nshards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_replicas_1_reproduces_modulo_placement(
        self, source, target, nshards
    ):
        request = _pair_request(source, target)
        assert replicas_of(request, nshards, 1) == (
            shard_of(request, nshards),
        )

    def test_modulo_placement_pinned_against_the_hash(self):
        # The PR 6 formula, spelled out: any change to the key layout
        # or digest parameters is a placement change for deployed
        # multi-shard daemons and must fail here.
        request = _pair_request("diamond:west", "diamond:east")
        key = "diamond|diamond:west|diamond:east"
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        for nshards in (2, 3, 8):
            expected = int.from_bytes(digest, "big") % nshards
            assert shard_of(request, nshards) == expected
            assert replicas_of(request, nshards, 1) == (expected,)

    @given(nshards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=32, deadline=None)
    def test_malformed_requests_pin_to_shard_zero(self, nshards):
        malformed = Request(op="pair", id=1, params={"source": 3}, v=2)
        assert shard_of(malformed, nshards) == 0
        for replicas in (1, 2, 4):
            assert replicas_of(malformed, nshards, replicas) == (0,)


class TestRendezvousPlacement:
    @given(
        source=_pop_ids,
        target=_pop_ids,
        nshards=st.integers(min_value=2, max_value=12),
        replicas=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_replica_sets_are_valid(self, source, target, nshards, replicas):
        got = replicas_of(_pair_request(source, target), nshards, replicas)
        assert len(got) == min(replicas, nshards)
        assert len(set(got)) == len(got)
        assert all(0 <= sid < nshards for sid in got)
        # Deterministic: same key, same set, every call.
        assert got == replicas_of(
            _pair_request(source, target), nshards, replicas
        )

    @given(
        source=_pop_ids,
        target=_pop_ids,
        nshards=st.integers(min_value=2, max_value=12),
        replicas=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_adding_a_shard_moves_only_the_minimal_keys(
        self, source, target, nshards, replicas
    ):
        """Rendezvous stability: growing N to N+1 may only insert the
        new shard into a key's replica set (evicting the last-ranked
        member) — it can never reshuffle placement among the existing
        shards, unlike the modulo hash."""
        request = _pair_request(source, target)
        old = replicas_of(request, nshards, replicas)
        new = replicas_of(request, nshards + 1, replicas)
        if nshards in set(new):
            # The new shard won a slot: the survivors keep their
            # relative order, and at most the last-ranked old member
            # fell off.
            survivors = tuple(sid for sid in new if sid != nshards)
            assert survivors == tuple(
                sid for sid in old if sid in set(survivors)
            )
            assert set(old) - set(new) <= {old[-1]}
        else:
            # The new shard lost everywhere: nothing moves at all.
            assert new == old

    @given(
        source=_pop_ids,
        target=_pop_ids,
        nshards=st.integers(min_value=3, max_value=12),
        replicas=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_growing_replicas_only_appends(
        self, source, target, nshards, replicas
    ):
        request = _pair_request(source, target)
        smaller = replicas_of(request, nshards, replicas)
        larger = replicas_of(request, nshards, replicas + 1)
        assert larger[: len(smaller)] == smaller

    @given(
        sources=st.lists(_pop_ids, min_size=1, max_size=3),
        nshards=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_params_keys_replicate_deterministically(self, sources, nshards):
        a = replicas_of(_params_request(sources), nshards, 2)
        b = replicas_of(_params_request(list(sources)), nshards, 2)
        assert a == b

    def test_route_and_pair_share_a_replica_set(self):
        # Same affinity key => same replica set: the two pair-routed
        # ops stay colocated under replication exactly as they were
        # under single-owner affinity.
        route = Request(
            op="route",
            id=1,
            params={"source": "net:a", "target": "net:b"},
            v=2,
        )
        pair = _pair_request("net:a", "net:b")
        for nshards in (2, 4, 8):
            for replicas in (2, 3):
                assert replicas_of(route, nshards, replicas) == replicas_of(
                    pair, nshards, replicas
                )

    def test_replicas_spread_across_keys(self):
        # Sanity: over many keys, every shard serves some replica slot
        # (rendezvous is balanced in expectation).
        nshards, replicas = 4, 2
        seen = set()
        for i in range(64):
            request = _pair_request(f"net:{i}", f"net:peer{i}")
            seen.update(replicas_of(request, nshards, replicas))
        assert seen == set(range(nshards))
