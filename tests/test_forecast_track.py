"""Tests for repro.forecast.track."""

from datetime import datetime, timedelta

import pytest

from repro.forecast.track import StormTrack, TrackFix, interpolate_waypoints
from repro.geo.coords import GeoPoint

T0 = datetime(2011, 8, 20, 19, 0)


def fix(hours: float, lat=25.0, lon=-75.0, wind=80.0, h=50.0, t=150.0):
    return TrackFix(
        time=T0 + timedelta(hours=hours),
        center=GeoPoint(lat, lon),
        max_wind_mph=wind,
        hurricane_radius_miles=h,
        tropical_radius_miles=t,
        motion_bearing_degrees=0.0,
        motion_speed_mph=10.0,
    )


class TestTrackFix:
    def test_radii_consistency_enforced(self):
        with pytest.raises(ValueError):
            fix(0, h=200.0, t=100.0)

    def test_negative_wind_rejected(self):
        with pytest.raises(ValueError):
            fix(0, wind=-5.0)

    def test_is_hurricane_threshold(self):
        assert fix(0, wind=74.0).is_hurricane
        assert not fix(0, wind=73.9).is_hurricane


class TestStormTrack:
    def test_requires_fixes(self):
        with pytest.raises(ValueError):
            StormTrack("Empty", [])

    def test_requires_name(self):
        with pytest.raises(ValueError):
            StormTrack("", [fix(0)])

    def test_chronological_order_enforced(self):
        with pytest.raises(ValueError):
            StormTrack("X", [fix(5), fix(0)])

    def test_duplicate_times_rejected(self):
        with pytest.raises(ValueError):
            StormTrack("X", [fix(0), fix(0)])

    def test_time_range(self):
        track = StormTrack("X", [fix(0), fix(6), fix(12)])
        assert track.start_time == T0
        assert track.end_time == T0 + timedelta(hours=12)
        assert len(track) == 3

    def test_track_length(self):
        track = StormTrack(
            "X", [fix(0, lat=25.0), fix(6, lat=26.0), fix(12, lat=27.0)]
        )
        assert track.track_length_miles() == pytest.approx(2 * 69.05, rel=0.01)

    def test_peak_intensity(self):
        track = StormTrack(
            "X", [fix(0, wind=60.0), fix(6, wind=120.0), fix(12, wind=90.0)]
        )
        assert track.peak_intensity().max_wind_mph == 120.0


class TestInterpolation:
    WAYPOINTS = (
        (0.0, 20.0, -70.0, 50.0, 0.0, 100.0),
        (24.0, 25.0, -75.0, 100.0, 60.0, 200.0),
        (48.0, 30.0, -78.0, 80.0, 40.0, 180.0),
    )

    def test_fix_count(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 25)
        assert len(fixes) == 25

    def test_endpoints_exact(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 25)
        assert fixes[0].center == GeoPoint(20.0, -70.0)
        assert fixes[-1].center == GeoPoint(30.0, -78.0)
        assert fixes[-1].time == T0 + timedelta(hours=48)

    def test_midpoint_values(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 49)
        mid = fixes[24]  # exactly hour 24
        assert mid.center.lat == pytest.approx(25.0)
        assert mid.max_wind_mph == pytest.approx(100.0)

    def test_monotone_time(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 30)
        times = [f.time for f in fixes]
        assert times == sorted(times)

    def test_motion_derived(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 25)
        assert fixes[0].motion_speed_mph > 0
        assert fixes[-1].motion_speed_mph == 0.0  # terminal fix

    def test_too_few_waypoints(self):
        with pytest.raises(ValueError):
            interpolate_waypoints(self.WAYPOINTS[:1], T0, 10)

    def test_non_increasing_hours(self):
        bad = (self.WAYPOINTS[1], self.WAYPOINTS[0], self.WAYPOINTS[2])
        with pytest.raises(ValueError):
            interpolate_waypoints(bad, T0, 10)

    def test_too_few_fixes(self):
        with pytest.raises(ValueError):
            interpolate_waypoints(self.WAYPOINTS, T0, 1)

    def test_radii_stay_consistent(self):
        fixes = interpolate_waypoints(self.WAYPOINTS, T0, 40)
        for f in fixes:
            assert f.tropical_radius_miles >= f.hurricane_radius_miles
