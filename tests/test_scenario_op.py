"""The `scenario` and `shared_risk` registry ops, end to end.

The acceptance bar: the `scenario` op answers identically via a direct
session handler call, a single-process server, and a 2-shard server —
seeded determinism plus the registry's params-routing makes the reply
mode-independent.  `shared_risk` rides the same parity harness.
"""

from __future__ import annotations

import pytest

from repro.engine import clear_engine_registry
from repro.server import (
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server import ops
from repro.server.service import QueryService
from repro.session import RoutingSession
from tests.conftest import build_diamond_model, build_diamond_network

SCENARIO_PARAMS = {
    "scenarios": 6,
    "seed": 3,
    "sample_pairs": 6,
    "headroom": 1.2,
}


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _direct(op, params):
    session = RoutingSession(build_diamond_network(), build_diamond_model())
    spec = ops.get_spec(op)
    return spec.handler(
        QueryService(session), ops.validate_params(spec, params)
    )


def _via_server(shards, calls):
    clear_engine_registry()
    thread = ServerThread(
        RoutingSession(build_diamond_network(), build_diamond_model()),
        ServerConfig(batch_linger=0.002, shards=shards),
    )
    host, port = thread.start()
    try:
        with RiskRouteClient(host, port, timeout=120) as client:
            return [getattr(client, op)(**params) for op, params in calls]
    finally:
        thread.stop()


@pytest.mark.timeout(300)
class TestScenarioOpParity:
    def test_direct_single_process_and_sharded_agree(self):
        calls = [
            ("scenario", SCENARIO_PARAMS),
            ("shared_risk", {"other": "diamond"}),
        ]
        direct = [_direct(op, params) for op, params in calls]
        single = _via_server(0, calls)
        sharded = _via_server(2, calls)
        assert single == direct
        assert sharded == direct

    def test_scenario_reply_shape(self):
        report = _direct("scenario", SCENARIO_PARAMS)
        assert report["network"] == "diamond"
        assert report["scenarios"] == SCENARIO_PARAMS["scenarios"]
        assert set(report["shortest"]) == set(report["riskroute"])
        assert report["shortest"]["policy"] == "shortest"
        assert report["riskroute"]["policy"] == "riskroute"

    def test_headroom_zero_means_unlimited(self):
        report = _direct(
            "scenario", {**SCENARIO_PARAMS, "headroom": 0}
        )
        for policy in ("shortest", "riskroute"):
            assert report[policy]["overload_trips"] == 0
            assert report[policy]["depth_distribution"] == {
                "0": SCENARIO_PARAMS["scenarios"]
            }

    def test_self_comparison_anchors_shared_risk(self):
        report = _direct("shared_risk", {"other": "diamond"})
        assert report["network_a"] == report["network_b"] == "diamond"
        assert report["colocation_fraction_a"] == 1.0
        assert report["colocation_fraction_b"] == 1.0
        assert report["risk_profile_divergence"] == pytest.approx(0.0)
        assert report["diversification_score"] == pytest.approx(0.0)


class TestOpValidation:
    def test_bad_params_are_bad_request(self):
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port, timeout=60) as client:
                for params in (
                    {"scenarios": 0},
                    {"defense": 5},
                    {"srg_fraction": "lots"},
                ):
                    with pytest.raises(ServerError) as err:
                        client.scenario(**params)
                    assert err.value.code == "bad_request"
                with pytest.raises(ServerError) as err:
                    client.shared_risk(other="atlantis-net")
                assert err.value.code == "bad_request"
        finally:
            thread.stop()

    def test_srg_fraction_above_one_rejected(self):
        with pytest.raises(ValueError):
            _direct("scenario", {**SCENARIO_PARAMS, "srg_fraction": 1.5})
