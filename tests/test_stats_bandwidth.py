"""Tests for repro.stats.bandwidth."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.stats.bandwidth import (
    BandwidthSearchResult,
    cross_validate_bandwidth,
    log_space_candidates,
)


def clustered_events(n=120, spread_deg=0.3, seed=1):
    rng = np.random.default_rng(seed)
    centers = [(35.0, -95.0), (40.0, -80.0), (30.0, -100.0)]
    out = []
    for i in range(n):
        lat, lon = centers[i % 3]
        out.append(
            GeoPoint(
                lat + rng.normal(0, spread_deg), lon + rng.normal(0, spread_deg)
            )
        )
    return out


class TestCandidates:
    def test_log_space_endpoints(self):
        candidates = log_space_candidates(1.0, 100.0, 5)
        assert candidates[0] == pytest.approx(1.0)
        assert candidates[-1] == pytest.approx(100.0)
        assert len(candidates) == 5

    def test_log_space_monotone(self):
        candidates = log_space_candidates(2.0, 500.0, 9)
        assert candidates == sorted(candidates)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            log_space_candidates(10.0, 5.0, 3)
        with pytest.raises(ValueError):
            log_space_candidates(0.0, 5.0, 3)

    def test_too_few_candidates(self):
        with pytest.raises(ValueError):
            log_space_candidates(1.0, 10.0, 1)


class TestCrossValidation:
    def test_picks_reasonable_bandwidth(self):
        events = clustered_events()
        result = cross_validate_bandwidth(
            events, log_space_candidates(2.0, 2000.0, 10), seed=3
        )
        # Clusters are ~20 miles across; CV must not pick the extremes.
        assert 2.0 < result.best_bandwidth_miles < 2000.0

    def test_deterministic(self):
        events = clustered_events()
        candidates = log_space_candidates(5.0, 500.0, 6)
        r1 = cross_validate_bandwidth(events, candidates, seed=7)
        r2 = cross_validate_bandwidth(events, candidates, seed=7)
        assert r1.best_bandwidth_miles == r2.best_bandwidth_miles
        assert r1.scores == r2.scores

    def test_subsampling_cap(self):
        events = clustered_events(n=200)
        result = cross_validate_bandwidth(
            events, [50.0, 100.0], max_events=60, seed=0
        )
        assert result.n_events_used == 60

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            cross_validate_bandwidth(clustered_events(), [])

    def test_too_few_events_rejected(self):
        with pytest.raises(ValueError):
            cross_validate_bandwidth(clustered_events(4), [10.0], n_folds=5)

    def test_too_few_folds_rejected(self):
        with pytest.raises(ValueError):
            cross_validate_bandwidth(clustered_events(), [10.0], n_folds=1)

    def test_result_score_lookup(self):
        events = clustered_events(n=60)
        result = cross_validate_bandwidth(events, [20.0, 80.0], seed=1)
        assert result.score_of(20.0) == result.scores[0]
        with pytest.raises(KeyError):
            result.score_of(999.0)

    def test_scores_cover_all_candidates(self):
        events = clustered_events(n=60)
        candidates = [10.0, 50.0, 200.0]
        result = cross_validate_bandwidth(events, candidates, seed=1)
        assert len(result.scores) == 3
        assert result.candidates == (10.0, 50.0, 200.0)

    def test_best_has_minimal_score(self):
        events = clustered_events(n=90)
        result = cross_validate_bandwidth(
            events, log_space_candidates(3.0, 800.0, 8), seed=2
        )
        assert result.score_of(result.best_bandwidth_miles) == min(result.scores)
