"""Tests for repro.engine — the batched, cached RoutingEngine.

The engine must be byte-identical to the dict-based reference
implementation in repro.core.riskroute, warm answers must equal cold
ones, invalidation must track the risk fingerprint, and the pools must
agree with the serial path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.riskroute import _risk_dijkstra
from repro.engine import (
    CsrGraph,
    EngineConfig,
    RoutingEngine,
    SweepStrategy,
    alpha_bucket,
    clear_engine_registry,
    csr_sweep,
    get_engine,
    graph_fingerprint,
    risk_fingerprint,
    sweep_many,
)
from repro.graph.core import NodeNotFoundError
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


@pytest.fixture
def diamond_graph(diamond_network):
    return diamond_network.distance_graph()


@pytest.fixture
def engine(diamond_graph, diamond_model):
    return RoutingEngine(diamond_graph, diamond_model)


def _reference_sweep(graph, model, source, alpha):
    node_risk = {node: model.node_risk(node) for node in graph.nodes()}
    return _risk_dijkstra(graph, node_risk, alpha, source)


class TestCsrParity:
    """The CSR sweep must match the dict reference byte for byte."""

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 123.75])
    def test_diamond_all_sources(self, diamond_graph, diamond_model, alpha):
        csr = CsrGraph(diamond_graph)
        risk = [diamond_model.node_risk(n) for n in csr.node_ids]
        entry_risk = csr.neighbor_values(risk)
        for source in diamond_graph.nodes():
            ref_dist, ref_parent = _reference_sweep(
                diamond_graph, diamond_model, source, alpha
            )
            sweep = csr_sweep(
                csr.indptr_list,
                csr.indices_list,
                csr.weights_list,
                entry_risk,
                csr.index[source],
                alpha,
            )
            got_dist = {
                csr.node_ids[i]: sweep.dist[i]
                for i in range(len(csr.node_ids))
                if sweep.dist[i] != float("inf")
            }
            got_parent = {
                csr.node_ids[i]: csr.node_ids[p]
                for i, p in enumerate(sweep.parent)
                if p >= 0
            }
            assert got_dist == ref_dist  # exact floats, not approx
            assert got_parent == ref_parent

    def test_corpus_sample(self, teliasonera, teliasonera_model):
        graph = teliasonera.distance_graph()
        csr = CsrGraph(graph)
        risk = [teliasonera_model.node_risk(n) for n in csr.node_ids]
        entry_risk = csr.neighbor_values(risk)
        source = csr.node_ids[0]
        for alpha in (0.0, 0.31):
            ref_dist, _ = _reference_sweep(
                graph, teliasonera_model, source, alpha
            )
            sweep = csr_sweep(
                csr.indptr_list,
                csr.indices_list,
                csr.weights_list,
                entry_risk,
                0,
                alpha,
            )
            for i, name in enumerate(csr.node_ids):
                assert sweep.dist[i] == ref_dist[name]

    def test_sweep_order_matches_dict_insertion(self, diamond_graph, diamond_model):
        """SweepResult.order replicates the reference dict's insertion
        order, which downstream float accumulation depends on."""
        csr = CsrGraph(diamond_graph)
        risk = [diamond_model.node_risk(n) for n in csr.node_ids]
        source = next(iter(diamond_graph.nodes()))
        ref_dist, _ = _reference_sweep(diamond_graph, diamond_model, source, 0.4)
        sweep = csr_sweep(
            csr.indptr_list,
            csr.indices_list,
            csr.weights_list,
            csr.neighbor_values(risk),
            csr.index[source],
            0.4,
        )
        assert [csr.node_ids[i] for i in sweep.order] == list(ref_dist)


class TestWarmColdParity:
    def test_cached_pair_identical_to_cold(self, diamond_graph, diamond_model):
        cold = RoutingEngine(diamond_graph, diamond_model)
        warm = RoutingEngine(diamond_graph, diamond_model)
        warm.route_pair("diamond:west", "diamond:east")  # prime caches
        a = cold.route_pair("diamond:west", "diamond:east")
        b = warm.route_pair("diamond:west", "diamond:east")
        assert a == b
        assert pickle.dumps(a) == pickle.dumps(b)
        assert warm.stats()["sweeps"]["hits"] > 0

    @pytest.mark.parametrize(
        "strategy", [SweepStrategy.EXACT, SweepStrategy.PER_SOURCE]
    )
    def test_cached_ratios_identical_to_cold(self, engine, strategy):
        cold = engine.ratios(strategy=strategy)
        assert engine.stats()["results"]["misses"] == 1
        warm = engine.ratios(strategy=strategy)
        assert engine.stats()["results"]["hits"] == 1
        assert warm is cold  # memoized aggregate, not a recomputation
        assert pickle.dumps(warm) == pickle.dumps(cold)

    def test_engine_matches_reference_router_loop(
        self, teliasonera, teliasonera_model
    ):
        """Engine ratios equal the values the seed computed pair by pair."""
        from repro.core.ratios import ratios_over_pairs

        graph = teliasonera.distance_graph()
        engine = RoutingEngine(graph, teliasonera_model)
        pairs = []
        nodes = list(graph.nodes())[:6]
        for s in nodes:
            for t in nodes:
                if s != t:
                    pairs.append(engine.route_pair(s, t))
        reference = ratios_over_pairs(pairs)
        batched = engine.ratios(sources=nodes, targets=nodes)
        assert batched.risk_reduction_ratio == reference.risk_reduction_ratio
        assert (
            batched.distance_increase_ratio
            == reference.distance_increase_ratio
        )


class TestInvalidation:
    def test_forecast_update_drops_risk_sweeps(self, diamond_network, engine):
        engine.ratios()  # populate sweeps (risk-weighted + geographic)
        cached_before = engine.stats()["cached_sweeps"]
        assert cached_before > 0
        of = {pop_id: 0.25 for pop_id in diamond_network.pop_ids()}
        changed = engine.update_model(engine.model.with_forecast_risk(of))
        assert changed is True
        stats = engine.stats()
        assert stats["sweeps"]["invalidations"] > 0
        assert stats["cached_results"] == 0
        # Geographic (alpha == 0) sweeps survive: risk cannot affect them.
        remaining = stats["cached_sweeps"]
        assert 0 < remaining < cached_before

    def test_equivalent_model_keeps_caches(self, engine):
        engine.ratios()
        stats_before = engine.stats()
        clone = build_diamond_model()  # same numbers, new object
        assert engine.update_model(clone) is False
        assert engine.stats()["cached_sweeps"] == stats_before["cached_sweeps"]
        assert engine.model is clone

    def test_new_field_changes_answers(self, diamond_network, diamond_graph):
        """After invalidation the engine serves the new model's routes."""
        risky_south = RoutingEngine(diamond_graph, build_diamond_model())
        route_before = risky_south.risk_route("diamond:west", "diamond:east")
        assert "diamond:north" in route_before.path
        # Flip the risky transit from south to north.
        flipped = build_diamond_model(south_risk=1e-3, north_risk=5e-2)
        assert risky_south.update_model(flipped) is True
        route_after = risky_south.risk_route("diamond:west", "diamond:east")
        assert "diamond:south" in route_after.path

    def test_risk_fingerprint_tracks_shares_and_risk(
        self, diamond_graph, diamond_model
    ):
        nodes = list(diamond_graph.nodes())
        base = risk_fingerprint(diamond_model, nodes)
        assert risk_fingerprint(build_diamond_model(), nodes) == base
        assert risk_fingerprint(
            build_diamond_model(south_risk=9e-2), nodes
        ) != base


class TestParallel:
    def _tasks(self, engine):
        return [
            (s, engine._shares[s] + engine._mean_share)
            for s in range(engine.node_count)
        ]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_matches_serial(self, teliasonera, teliasonera_model, executor):
        graph = teliasonera.distance_graph()
        serial = RoutingEngine(graph, teliasonera_model)
        pooled = RoutingEngine(
            graph,
            teliasonera_model,
            config=EngineConfig(workers=2, executor=executor),
        )
        tasks = self._tasks(serial)
        arrays = serial._arrays()
        serial_results = sweep_many(arrays, tasks, serial.config)
        pooled_results = sweep_many(arrays, tasks, pooled.config)
        assert serial_results == pooled_results

    def test_pooled_ratios_equal_serial(self, teliasonera, teliasonera_model):
        graph = teliasonera.distance_graph()
        serial = RoutingEngine(graph, teliasonera_model).ratios()
        pooled = RoutingEngine(
            graph,
            teliasonera_model,
            config=EngineConfig(workers=2, executor="thread"),
        ).ratios()
        assert pooled.risk_reduction_ratio == serial.risk_reduction_ratio
        assert (
            pooled.distance_increase_ratio == serial.distance_increase_ratio
        )

    def test_prefetch_counts_and_dedupes(self, engine):
        tasks = self._tasks(engine)
        assert engine.prefetch(tasks) == engine.node_count
        assert engine.prefetch(tasks) == 0  # all cached now


class TestAlphaBucketing:
    def test_zero_resolution_is_exact(self):
        assert alpha_bucket(0.123456, 0.0) == 0.123456

    def test_bucketing_quantizes(self):
        assert alpha_bucket(0.123456, 0.01) == pytest.approx(0.12)
        assert alpha_bucket(0.128, 0.01) == pytest.approx(0.13)

    def test_bucketed_engine_shares_sweeps(self, diamond_graph, diamond_model):
        engine = RoutingEngine(
            diamond_graph,
            diamond_model,
            config=EngineConfig(alpha_resolution=10.0),
        )
        # All pair alphas land in one bucket at this coarse resolution,
        # so the exact strategy needs one risk sweep per source.
        engine.ratios(strategy=SweepStrategy.EXACT)
        # node_count geographic + node_count bucketed risk sweeps.
        assert engine.stats()["cached_sweeps"] <= 2 * engine.node_count

    def test_bucketed_costs_still_exact(self, diamond_graph, diamond_model):
        """Bucketing may perturb path choice, never reported costs."""
        from repro.core.bitrisk import path_metrics

        engine = RoutingEngine(
            diamond_graph,
            diamond_model,
            config=EngineConfig(alpha_resolution=0.05),
        )
        route = engine.risk_route("diamond:west", "diamond:east")
        recomputed = path_metrics(
            diamond_graph, list(route.path), diamond_model
        )
        assert route.bit_risk_miles == recomputed.bit_risk_miles


class TestRegistry:
    def test_same_topology_shares_engine(self, diamond_network, diamond_model):
        g1 = diamond_network.distance_graph()
        g2 = diamond_network.distance_graph()
        assert get_engine(g1, diamond_model) is get_engine(g2, diamond_model)

    def test_mutated_graph_gets_fresh_engine(self, diamond_network, diamond_model):
        graph = diamond_network.distance_graph()
        first = get_engine(graph, diamond_model)
        graph.add_edge("diamond:west", "diamond:east", 1.0)
        second = get_engine(graph, diamond_model)
        assert second is not first
        assert graph_fingerprint(graph) == second.topology_fingerprint

    def test_registry_swaps_model_in_place(self, diamond_graph, diamond_model):
        engine = get_engine(diamond_graph, diamond_model)
        engine.ratios()
        flipped = build_diamond_model(south_risk=1e-3, north_risk=5e-2)
        again = get_engine(diamond_graph, flipped)
        assert again is engine
        assert engine.model is flipped
        assert engine.stats()["sweeps"]["invalidations"] > 0


class TestErrors:
    def test_unknown_node_raises(self, engine):
        with pytest.raises(NodeNotFoundError):
            engine.risk_route("diamond:west", "nowhere")
        with pytest.raises(NodeNotFoundError):
            engine.sweep("nowhere", 0.0)

    def test_model_must_cover_topology(self, diamond_graph):
        partial = build_diamond_model()
        diamond_graph.add_node("orphan")
        with pytest.raises(KeyError):
            RoutingEngine(diamond_graph, partial)

    def test_disconnected_pair_raises(self, diamond_network, diamond_model):
        from repro.graph.shortest_path import NoPathError
        from repro.risk.model import RiskModel

        graph = diamond_network.distance_graph()
        graph.add_node("island")
        shares = {n: 0.25 for n in graph.nodes()}
        oh = {n: 1e-3 for n in graph.nodes()}
        of = {n: 0.0 for n in graph.nodes()}
        model = RiskModel(shares, oh, of, gamma_h=1e5, gamma_f=1e3)
        engine = RoutingEngine(graph, model)
        with pytest.raises(NoPathError):
            engine.risk_route("diamond:west", "island")


class TestKernelSelection:
    """The bucketed kernel and targeted A* behind EngineConfig gates."""

    def _forced(self, kernel="bucketed", **extra):
        return EngineConfig(
            kernel=kernel,
            bucketed_min_nodes=0,
            bucketed_min_batch=1,
            **extra,
        )

    def test_forced_bucketed_prefetch_matches_exact(
        self, diamond_graph, diamond_model
    ):
        exact = RoutingEngine(
            diamond_graph, diamond_model, config=EngineConfig(kernel="exact")
        )
        forced = RoutingEngine(
            diamond_graph, diamond_model, config=self._forced()
        )
        n = forced.node_count
        for e in (exact, forced):
            e.prefetch((s, 0.0) for s in range(n))
        for source in exact.node_ids:
            a = exact.sweep(source, 0.0)
            b = forced.sweep(source, 0.0)
            assert list(a.dist) == list(b.dist)
            assert list(a.parent) == list(b.parent)

    def test_targeted_route_equals_exact_route(self, diamond_network):
        model = build_diamond_model()
        exact = RoutingEngine(
            diamond_network.distance_graph(),
            model,
            config=EngineConfig(kernel="exact"),
        )
        targeted = RoutingEngine(
            diamond_network.distance_graph(),
            model,
            config=self._forced(kernel="auto", targeted_min_nodes=1),
        )
        targeted.set_coordinates(
            [
                (
                    diamond_network.pop(node).location.lat,
                    diamond_network.pop(node).location.lon,
                )
                for node in targeted.node_ids
            ]
        )
        for source in exact.node_ids:
            for target in exact.node_ids:
                if source == target:
                    continue
                a = exact.risk_route(source, target)
                b = targeted.risk_route(source, target)
                assert a.path == b.path
                assert a.metrics == b.metrics
                s = exact.shortest_path(source, target)
                t = targeted.shortest_path(source, target)
                assert s.path == t.path
        stats = targeted.targeted_stats()
        assert stats["queries"] > 0
        assert stats["settled"] <= stats["queries"] * targeted.node_count

    def test_targeted_disconnected_pair_raises(self, diamond_network):
        from repro.graph.shortest_path import NoPathError
        from repro.risk.model import RiskModel

        graph = diamond_network.distance_graph()
        graph.add_node("island")
        shares = {n: 0.25 for n in graph.nodes()}
        oh = {n: 1e-3 for n in graph.nodes()}
        of = {n: 0.0 for n in graph.nodes()}
        model = RiskModel(shares, oh, of)
        engine = RoutingEngine(
            graph, model, config=self._forced(kernel="auto", targeted_min_nodes=1)
        )
        with pytest.raises(NoPathError):
            engine.risk_route("diamond:west", "island")
        assert engine.targeted_stats()["queries"] >= 1

    def test_invalid_kernel_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(kernel="quantum")
        with pytest.raises(ValueError):
            EngineConfig(bucketed_min_batch=0)
        with pytest.raises(ValueError):
            EngineConfig(sweep_delta=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(landmark_count=0)

    def test_set_coordinates_validates_and_resets(self, engine):
        with pytest.raises(ValueError):
            engine.set_coordinates([(0.0, 0.0)])  # wrong length
        coords = [(float(i), float(-i)) for i in range(engine.node_count)]
        engine.set_coordinates(coords)
        index = engine.landmark_index()
        assert index is engine.landmark_index()  # cached
        engine.set_coordinates(coords)  # unchanged: keep the index
        assert index is engine.landmark_index()
        coords2 = [(lat + 1.0, lon) for lat, lon in coords]
        engine.set_coordinates(coords2)  # changed: rebuild lazily
        assert engine.landmark_index() is not index
