"""Monte Carlo driver: seeded determinism across fan-out widths.

All randomness is drawn up front from one generator; the chunked
``thread_map`` execution is pure computation merged in task order —
so the same seed must produce byte-identical reports at any worker
count or chunk size.  That invariant is what lets the `scenario` op
answer identically from the single-process server and every shard.
"""

from __future__ import annotations

import json

import pytest

from repro.scenario import CascadeConfig, ScenarioConfig, run_monte_carlo
from tests.conftest import build_diamond_model, build_diamond_network

N = 30


def _run(**overrides):
    config = ScenarioConfig(**{
        "scenarios": N, "seed": 11, "sample_pairs": 10, **overrides
    })
    return run_monte_carlo(
        build_diamond_network(), build_diamond_model(), config
    )


class TestDeterminism:
    def test_identical_across_fanout_widths(self):
        serial = _run(workers=0)
        for workers, chunk_size in ((2, 4), (4, 32), (8, 1)):
            fanned = _run(workers=workers, chunk_size=chunk_size)
            assert fanned.as_dict() == serial.as_dict()

    def test_seed_changes_the_draw(self):
        assert _run().as_dict() != _run(seed=12).as_dict()


class TestReportShape:
    def test_event_counts_partition_the_run(self):
        report = _run()
        assert report.scenarios == N
        assert report.srg_activations + report.disaster_events == N
        assert report.srg_groups > 0
        for metrics in (report.shortest, report.riskroute):
            assert metrics.scenarios == N
            assert sum(metrics.depth_distribution.values()) == N
            assert 0.0 <= metrics.route_survival <= 1.0
            assert metrics.demand_survival + metrics.unserved_demand == (
                pytest.approx(1.0)
            )
            if metrics.partitions:
                assert metrics.mttf_events == pytest.approx(
                    N / metrics.partitions
                )
            else:
                assert metrics.mttf_events is None

    def test_srg_fraction_zero_is_pure_disasters(self):
        report = _run(srg_fraction=0.0)
        assert report.srg_activations == 0
        assert report.disaster_events == N

    def test_as_dict_is_json_serialisable(self):
        payload = _run().as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["survival_improvement"] == pytest.approx(
            payload["riskroute"]["route_survival"]
            - payload["shortest"]["route_survival"]
        )

    def test_defense_knob_threads_through(self):
        defended = _run(cascade=CascadeConfig(redistribute=True))
        naive = _run(cascade=CascadeConfig(redistribute=False))
        assert (
            naive.riskroute.mean_cascade_depth
            > defended.riskroute.mean_cascade_depth
        )


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"scenarios": 0},
        {"srg_fraction": 1.5},
        {"srg_fraction": -0.1},
        {"chunk_size": 0},
        {"workers": -1},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            ScenarioConfig(**overrides)
