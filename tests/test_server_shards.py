"""The sharded serving tier: affinity, parity, barriers, chaos.

Covers the sharded-serving issue's acceptance tests:

* :func:`~repro.server.shards.shard_of` is deterministic with
  per-network, per-pair affinity — the same pair always lands on the
  same shard, so its sweep caches stay hot;
* a sharded server's replies are *identical* (payload and fingerprint)
  to the single-process server and to a direct
  :class:`~repro.RoutingSession`;
* forecast swaps broadcast behind a fingerprint barrier: no reply ever
  mixes pre- and post-swap state, under concurrent load;
* a shard killed mid-batch (injected ``shard_exit``) yields exactly
  one reply per request — typed ``internal`` errors for the doomed
  batch — with ``degraded`` health that heals on the next clean batch.

Shard workers are real spawned processes; every server test here runs
under a pytest-timeout so a wedged pipe fails fast instead of hanging
the suite.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from itertools import permutations

import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.server import (
    FaultPlane,
    FaultRule,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import PROTOCOL_VERSION, Request, pair_to_dict
from repro.server.shards import shard_of
from tests.conftest import build_diamond_model, build_diamond_network

WEST, EAST = "diamond:west", "diamond:east"
POPS = ("diamond:west", "diamond:east", "diamond:north", "diamond:south")


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _pair_request(source: str, target: str, op: str = "pair") -> Request:
    return Request(
        op=op, id=1, params={"source": source, "target": target},
        v=PROTOCOL_VERSION,
    )


class TestShardOf:
    def test_same_pair_always_same_shard(self):
        for nshards in (2, 3, 8):
            for source, target in permutations(POPS, 2):
                first = shard_of(_pair_request(source, target), nshards)
                assert 0 <= first < nshards
                for _ in range(5):
                    assert shard_of(
                        _pair_request(source, target), nshards
                    ) == first

    def test_route_and_pair_colocate(self):
        # Affinity is per endpoint pair, not per op: a route and a pair
        # for the same endpoints share sweep caches on one shard.
        for source, target in permutations(POPS, 2):
            assert shard_of(_pair_request(source, target, "route"), 4) == \
                shard_of(_pair_request(source, target, "pair"), 4)

    def test_strategy_param_does_not_move_the_pair(self):
        base = Request(
            op="route", id=1,
            params={"source": WEST, "target": EAST}, v=2,
        )
        tuned = Request(
            op="route", id=2,
            params={"source": WEST, "target": EAST, "strategy": "exact"},
            v=2,
        )
        assert shard_of(base, 8) == shard_of(tuned, 8)

    def test_network_prefix_keys_the_hash(self):
        # Same city suffix under different network prefixes must be
        # free to land on different shards (per-network affinity).
        spread = {
            shard_of(_pair_request(f"net{i}:a", f"net{i}:b"), 8)
            for i in range(32)
        }
        assert len(spread) > 1

    def test_pairs_spread_across_shards(self):
        pops = [f"zoo:pop{i}" for i in range(16)]
        hits = {
            shard_of(_pair_request(s, t), 2)
            for s, t in permutations(pops, 2)
        }
        assert hits == {0, 1}

    def test_params_routing_is_key_order_independent(self):
        a = Request(op="ratios", id=1,
                    params={"sources": [WEST], "targets": [EAST]}, v=2)
        b = Request(op="ratios", id=2,
                    params={"targets": [EAST], "sources": [WEST]}, v=2)
        assert shard_of(a, 8) == shard_of(b, 8)

    def test_single_shard_and_malformed_requests_pin_to_zero(self):
        assert shard_of(_pair_request(WEST, EAST), 1) == 0
        assert shard_of(_pair_request(WEST, EAST), 0) == 0
        broken = Request(op="pair", id=1,
                         params={"source": 7, "target": None}, v=2)
        assert shard_of(broken, 4) == 0


@pytest.mark.timeout(180)
class TestShardedParity:
    def test_replies_identical_to_single_process_and_direct(self):
        network, model = build_diamond_network(), build_diamond_model()
        session = RoutingSession(network, model)
        direct = {
            (s, t): pair_to_dict(session.pair(s, t))
            for s, t in permutations(POPS, 2)
        }
        direct_fp = session.engine.risk_fingerprint

        def serve_and_collect(shards):
            clear_engine_registry()
            thread = ServerThread(
                RoutingSession(
                    build_diamond_network(), build_diamond_model()
                ),
                ServerConfig(batch_linger=0.002, shards=shards),
            )
            host, port = thread.start()
            try:
                with RiskRouteClient(host, port) as client:
                    replies = {
                        key: client.pair(*key) for key in direct
                    }
                    ratios = client.ratios()
                    provision = client.provision(top=2)
                    fingerprint = client.last_fingerprint
            finally:
                thread.stop()
            return replies, ratios, provision, fingerprint

        single = serve_and_collect(shards=0)
        sharded = serve_and_collect(shards=2)
        assert sharded == single
        assert sharded[0] == direct
        assert sharded[3] == direct_fp

    def test_stats_and_health_expose_shards(self):
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002, shards=2),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                for _ in range(5):
                    client.pair(WEST, EAST)
                stats = client.stats()
                health = client.health()
        finally:
            thread.stop()
        shards = stats["shards"]
        assert shards["count"] == 2
        assert shards["alive"] == 2
        assert shards["crashes"] == 0
        assert shards["replicas"] == 1
        assert shards["failovers"] == 0
        assert shards["hedges"] == 0
        # Per-pair affinity end to end: every batch of the repeated
        # pair landed on one shard; the other stayed cold.
        batches = sorted(
            entry["batches"] for entry in shards["per_shard"]
        )
        assert batches[0] == 0
        assert batches[-1] >= 5
        assert health["status"] == "ok"
        assert health["shards"] == {"count": 2, "alive": 2, "replicas": 1}


@pytest.mark.timeout(180)
class TestSwapBarrier:
    def test_no_reply_mixes_fingerprints_across_swap(self):
        reference = RoutingSession(
            build_diamond_network(), build_diamond_model()
        )
        forecast = {WEST: 0.7, "diamond:south": 0.2}
        # The server-side op fills absent PoPs with default=0.0; the
        # direct-session reference needs the full map spelled out.
        full_forecast = {pop: 0.0 for pop in POPS}
        full_forecast.update(forecast)
        pre_fp = reference.engine.risk_fingerprint
        expected = {pre_fp: pair_to_dict(reference.pair(WEST, EAST))}
        reference.update_forecast(full_forecast)
        post_fp = reference.engine.risk_fingerprint
        assert post_fp != pre_fp
        expected[post_fp] = pair_to_dict(reference.pair(WEST, EAST))

        clear_engine_registry()
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002, shards=2),
        )
        host, port = thread.start()
        observed = []
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                with RiskRouteClient(host, port) as client:
                    while not stop.is_set():
                        payload = client.pair(WEST, EAST)
                        observed.append(
                            (client.last_fingerprint, payload)
                        )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, daemon=True) for _ in range(4)
        ]
        try:
            for worker in workers:
                worker.start()
            time.sleep(0.2)
            with RiskRouteClient(host, port) as client:
                swap = client.update_forecast(forecast)
            assert swap["changed"] is True
            time.sleep(0.2)
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
        finally:
            stop.set()
            thread.stop()
        assert not errors, errors
        fingerprints = {fp for fp, _ in observed}
        assert fingerprints == {pre_fp, post_fp}
        for fingerprint, payload in observed:
            # The barrier invariant: a reply tagged with a fingerprint
            # is the exact answer of that model state, never a mix.
            assert payload == expected[fingerprint]


@pytest.mark.timeout(180)
class TestShardChaos:
    def test_mid_batch_crash_yields_exactly_one_reply_each(self):
        plane = FaultPlane([FaultRule("shard_exit", hits=(1,))])
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.05, shards=2, faults=plane),
        )
        host, port = thread.start()
        try:
            # Pipeline one request per ordered pair in a single flush
            # so they coalesce into one batch spanning both shards.
            requests = {
                i: (s, t)
                for i, (s, t) in enumerate(permutations(POPS, 2))
            }
            by_shard = {0: 0, 1: 0}
            for s, t in requests.values():
                by_shard[shard_of(_pair_request(s, t), 2)] += 1
            assert by_shard[0] and by_shard[1], by_shard

            sock = socket.create_connection((host, port), timeout=60)
            stream = sock.makefile("rwb")
            for i, (s, t) in requests.items():
                stream.write(json.dumps({
                    "id": i, "op": "pair", "v": 2,
                    "source": s, "target": t,
                }).encode() + b"\n")
            stream.flush()
            replies = [
                json.loads(stream.readline()) for _ in requests
            ]
            sock.close()

            # Exactly one reply per request id, no extras, no hangs.
            assert sorted(r["id"] for r in replies) == sorted(requests)
            failed = [r for r in replies if not r["ok"]]
            served = [r for r in replies if r["ok"]]
            assert failed and served
            for reply in failed:
                assert reply["error"]["code"] == "internal"
                assert "shard" in reply["error"]["message"]

            with RiskRouteClient(host, port) as client:
                health = client.health()
                assert health["status"] == "degraded"
                assert "shard" in health["degraded_reason"]

                # The dead shard's replacement answers the same pairs
                # correctly, and a clean batch heals the health state.
                session = RoutingSession(
                    build_diamond_network(), build_diamond_model()
                )
                for reply in failed:
                    s, t = requests[reply["id"]]
                    assert client.pair(s, t) == pair_to_dict(
                        session.pair(s, t)
                    )
                health = client.health()
                assert health["status"] == "ok"
                assert health["shards"]["alive"] == 2

                stats = client.stats()
                assert stats["shards"]["crashes"] == 1
                assert stats["shards"]["restarts"] == 1
                assert stats["worker_crashes"] >= 1
                assert stats["worker_restarts"] >= 1
        finally:
            thread.stop()

    def test_swap_respawns_dead_shard_warm(self):
        plane = FaultPlane([FaultRule("shard_exit", hits=(1,))])
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002, shards=2, faults=plane),
        )
        host, port = thread.start()
        forecast = {WEST: 0.4}
        try:
            with RiskRouteClient(host, port) as client:
                with pytest.raises(ServerError) as err:
                    client.pair(WEST, EAST)
                assert err.value.code == "internal"
                swap = client.update_forecast(forecast)
                assert swap["changed"] is True
                post = client.pair(WEST, EAST)
                post_fp = client.last_fingerprint
                stats = client.stats()
        finally:
            thread.stop()
        # Every shard (including the respawned one) swapped to the new
        # field, and the served answer is the post-swap model's.
        assert stats["shards"]["fingerprint"] == post_fp
        reference = RoutingSession(
            build_diamond_network(), build_diamond_model()
        )
        full_forecast = {pop: 0.0 for pop in POPS}
        full_forecast.update(forecast)
        reference.update_forecast(full_forecast)
        assert post == pair_to_dict(reference.pair(WEST, EAST))
        assert reference.engine.risk_fingerprint == post_fp
