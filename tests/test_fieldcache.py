"""Tests for the persistent risk-field cache (repro.stats.fieldcache)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.stats.fieldcache import (
    RiskFieldCache,
    content_key,
    default_field_cache,
    resolve_cache,
)


class TestRiskFieldCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        key = content_key(["k1"])
        assert cache.get("oh", key) is None
        assert cache.stats.misses == 1
        values = np.array([1.0, 2.5, -3.0])
        cache.put("oh", key, values)
        loaded = cache.get("oh", key)
        np.testing.assert_array_equal(loaded, values)
        assert cache.stats.hits == 1

    def test_kinds_are_separate_namespaces(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        key = content_key(["shared"])
        cache.put("oh", key, np.array([1.0]))
        assert cache.get("grid", key) is None

    def test_invalidate(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        key = content_key(["k"])
        cache.put("oh", key, np.array([1.0]))
        assert cache.invalidate("oh", key) is True
        assert cache.stats.invalidations == 1
        assert cache.invalidate("oh", key) is False
        assert cache.get("oh", key) is None

    def test_clear(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        for i in range(3):
            cache.put("oh", content_key([str(i)]), np.array([float(i)]))
        assert cache.clear() == 3
        assert cache.get("oh", content_key(["0"])) is None

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        key = content_key(["corrupt"])
        cache.put("oh", key, np.array([4.0, 5.0]))
        path = tmp_path / f"oh-{key}.npy"
        path.write_bytes(b"not a numpy file at all")
        # Treated as a miss, and the bad file is removed.
        assert cache.get("oh", key) is None
        assert not path.exists()
        # The caller recomputes and re-stores; everything works again.
        cache.put("oh", key, np.array([4.0, 5.0]))
        np.testing.assert_array_equal(cache.get("oh", key), [4.0, 5.0])

    def test_truncated_entry_recovers(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        key = content_key(["torn"])
        cache.put("oh", key, np.arange(100, dtype=np.float64))
        path = tmp_path / f"oh-{key}.npy"
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get("oh", key) is None
        assert not path.exists()

    def test_put_failure_is_swallowed(self, tmp_path):
        missing_parent = tmp_path / "file"
        missing_parent.write_text("in the way")
        cache = RiskFieldCache(missing_parent / "sub")
        # mkdir under a regular file fails; put must not raise.
        cache.put("oh", content_key(["x"]), np.array([1.0]))
        assert cache.get("oh", content_key(["x"])) is None

    def test_bad_kind_rejected(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../escape", "key")

    def test_content_key_is_order_sensitive(self):
        assert content_key(["a", "b"]) != content_key(["b", "a"])
        assert content_key(["a", "b"]) == content_key(["a", "b"])


class TestResolution:
    def test_default_honours_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RISKROUTE_CACHE_DIR", str(tmp_path / "alt"))
        cache = default_field_cache()
        assert cache is not None
        assert cache.cache_dir == tmp_path / "alt"
        # Same dir resolves to the same instance (shared stats).
        assert default_field_cache() is cache

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("RISKROUTE_CACHE_DISABLE", "1")
        assert default_field_cache() is None
        assert resolve_cache("default") is None

    def test_resolve_passthrough(self, tmp_path):
        cache = RiskFieldCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(None) is None
        with pytest.raises(TypeError):
            resolve_cache("bogus")


#: Runs a small pop_risks in a child process and prints the resulting
#: o_h values and cache counters as JSON.
_SMOKE_SCRIPT = """
import json
from repro.geo.coords import GeoPoint
from repro.risk.historical import HistoricalRiskModel
from repro.stats.fieldcache import default_field_cache
from repro.stats.kde import GaussianKDE
from repro.topology.network import Network, PoP

events = [GeoPoint(30.0 + d, -90.0 + d) for d in (-0.2, -0.1, 0.0, 0.1, 0.2)]
model = HistoricalRiskModel({"storm": GaussianKDE(events, 40.0)})
net = Network("smoke")
net.add_pop(PoP("smoke:a", "A", GeoPoint(30.0, -90.0)))
net.add_pop(PoP("smoke:b", "B", GeoPoint(45.0, -110.0)))
net.add_link("smoke:a", "smoke:b")
risks = model.pop_risks(net)
stats = default_field_cache().stats
print(json.dumps({"risks": risks, "hits": stats.hits, "misses": stats.misses}))
"""


class TestColdWarmAcrossProcesses:
    def test_second_process_hits_disk_and_matches(self, tmp_path):
        """A warm disk cache serves pop_risks to a *fresh* process.

        Cold process: pure miss, KDE evaluated, vector stored.  Warm
        process: pure hit — no KDE evaluation — identical values.
        """
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        env["RISKROUTE_CACHE_DIR"] = str(tmp_path)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", _SMOKE_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        cold = run()
        assert cold["misses"] >= 1 and cold["hits"] == 0
        warm = run()
        assert warm["hits"] >= 1 and warm["misses"] == 0
        assert warm["risks"] == cold["risks"]
