"""Tests for the riskroute CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_route_defaults(self):
        args = build_parser().parse_args(
            ["route", "Level3", "Houston, TX", "Boston, MA"]
        )
        assert args.gamma_h == 1e5
        assert args.gamma_f == 1e3

    def test_route_overrides(self):
        args = build_parser().parse_args(
            [
                "route", "Level3", "A", "B",
                "--gamma-h", "1e6", "--gamma-f", "0",
            ]
        )
        assert args.gamma_h == 1e6
        assert args.gamma_f == 0.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "figure13" in out

    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "Level3" in out
        assert "Telepak" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2

    def test_route_roundtrip(self, capsys, teliasonera_model):
        code = main(
            [
                "route", "Teliasonera", "Miami, FL", "Seattle, WA",
                "--gamma-h", "1e6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shortest" in out
        assert "riskroute" in out

    def test_route_unknown_network(self, capsys):
        assert main(["route", "Comcast", "A", "B"]) == 2

    def test_route_unknown_pop(self, capsys):
        assert main(["route", "Teliasonera", "Nowhere, ZZ", "Miami, FL"]) == 2
