"""Tests for the riskroute CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_route_defaults(self):
        args = build_parser().parse_args(
            ["route", "Level3", "Houston, TX", "Boston, MA"]
        )
        assert args.gamma_h == 1e5
        assert args.gamma_f == 1e3

    def test_route_overrides(self):
        args = build_parser().parse_args(
            [
                "route", "Level3", "A", "B",
                "--gamma-h", "1e6", "--gamma-f", "0",
            ]
        )
        assert args.gamma_h == 1e6
        assert args.gamma_f == 0.0


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_dunder_version_matches_pyproject(self):
        import re
        from pathlib import Path

        import repro

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert repro.__version__ == declared


class TestServeQueryParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "Level3"])
        assert args.command == "serve"
        assert args.port == 4174
        assert args.max_pending == 256
        assert args.request_timeout == 30.0

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "Level3", "--port", "0", "--max-pending", "8",
             "--batch-linger", "0.01"]
        )
        assert args.port == 0
        assert args.max_pending == 8
        assert args.batch_linger == 0.01

    def test_query_route(self):
        args = build_parser().parse_args(
            ["query", "--port", "9999", "route", "a", "b",
             "--strategy", "per-source"]
        )
        assert args.command == "query"
        assert args.query_op == "route"
        assert args.strategy == "per-source"

    def test_query_requires_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--port", "9999"])

    def test_serve_unknown_network(self, capsys):
        assert main(["serve", "Atlantisnet"]) == 2

    def test_query_connection_refused(self, capsys):
        # A port in TEST-NET territory nothing listens on.
        code = main(["query", "--port", "1", "--timeout", "2", "health"])
        assert code == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_query_retries_flag(self):
        args = build_parser().parse_args(
            ["query", "--port", "9999", "--retries", "3", "health"]
        )
        assert args.retries == 3


class _FakeQueryClient:
    """Stands in for RiskRouteClient to drive `_cmd_query` error paths."""

    error: Exception = None

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        pass

    def health(self):
        raise type(self).error


class TestQueryErrorMapping:
    """Satellite: timeouts and mid-call drops exit 1 with one stderr
    line instead of a traceback."""

    @pytest.fixture
    def fake_client(self, monkeypatch):
        import repro.server

        monkeypatch.setattr(
            repro.server, "RiskRouteClient", _FakeQueryClient
        )
        return _FakeQueryClient

    def test_socket_timeout_exits_1(self, capsys, fake_client):
        import socket

        fake_client.error = socket.timeout("timed out")
        code = main(["query", "--port", "9", "--timeout", "2", "health"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "timed out after 2s" in err
        assert "127.0.0.1:9" in err

    def test_mid_call_drop_exits_1(self, capsys, fake_client):
        fake_client.error = ConnectionError("server closed the connection")
        code = main(["query", "--port", "9", "health"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "connection to 127.0.0.1:9 failed" in err
        assert "server closed" in err

    def test_server_error_still_exits_1(self, capsys, fake_client):
        from repro.server import ServerError

        fake_client.error = ServerError("overloaded", "queue full")
        code = main(["query", "--port", "9", "health"])
        assert code == 1
        assert "overloaded" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "figure13" in out

    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "Level3" in out
        assert "Telepak" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2

    def test_route_roundtrip(self, capsys, teliasonera_model):
        code = main(
            [
                "route", "Teliasonera", "Miami, FL", "Seattle, WA",
                "--gamma-h", "1e6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shortest" in out
        assert "riskroute" in out

    def test_route_unknown_network(self, capsys):
        assert main(["route", "Comcast", "A", "B"]) == 2

    def test_route_unknown_pop(self, capsys):
        assert main(["route", "Teliasonera", "Nowhere, ZZ", "Miami, FL"]) == 2
