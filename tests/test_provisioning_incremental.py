"""The incremental provisioning layer: exactness and parity.

The in-place edge-insertion update must track a from-scratch
``_ComponentMatrices`` rebuild (DESIGN.md section 9), and the rewritten
candidate/greedy/scoring paths must reproduce what the rebuild-per-
iteration implementation computed.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.provisioning import (
    ProvisioningAnalyzer,
    ProvisioningStats,
    _ComponentMatrices,
    candidate_links,
)
from repro.engine import clear_engine_registry, get_engine
from repro.geo.distance import haversine_miles
from repro.graph.shortest_path import all_pairs_shortest_paths
from repro.risk.model import RiskModel
from repro.topology.builders import build_network
from repro.topology.cities import ALL_CITIES
from repro.topology.zoo import network_by_name

city_subsets = st.lists(
    st.sampled_from(list(ALL_CITIES[:60])), min_size=6, max_size=14, unique=True
)


class TestIncrementalExactness:
    @given(city_subsets, st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_incremental_matches_rebuild_on_gabriel_meshes(
        self, cities, k, seed
    ):
        clear_engine_registry()
        network = build_network("prop", cities, len(cities), 3.0)
        pop_ids = network.pop_ids()
        weight = sum(range(1, len(pop_ids) + 1))
        model = RiskModel(
            {p: (i + 1) / weight for i, p in enumerate(pop_ids)},
            {p: 0.01 * ((i * 7) % 5) for i, p in enumerate(pop_ids)},
            {p: 0.02 * ((i * 3) % 7) for i, p in enumerate(pop_ids)},
        )
        matrices = _ComponentMatrices(network, model)
        assert matrices.connected
        rng = random.Random(seed)
        pop_ids = network.pop_ids()
        committed = 0
        attempts = 0
        while committed < k and attempts < 200:
            attempts += 1
            pop_a, pop_b = rng.sample(pop_ids, 2)
            if network.has_link(pop_a, pop_b):
                continue
            link = network.add_link(pop_a, pop_b)
            engine = get_engine(network.distance_graph(), model)
            matrices.commit_link(engine, pop_a, pop_b, link.length_miles)
            committed += 1
        fresh = _ComponentMatrices(network, model)
        np.testing.assert_allclose(
            matrices.dist, fresh.dist, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            matrices.risk, fresh.risk, rtol=1e-9, atol=1e-9
        )

    def test_verify_reports_tiny_deviation(self):
        clear_engine_registry()
        network = network_by_name("Sprint")
        model = RiskModel.for_network(network)
        working = network.copy()
        matrices = _ComponentMatrices(working, model, with_candidates=True)
        stats = ProvisioningStats()
        choice = matrices.candidate_list()[0]
        link = working.add_link(choice.pop_a, choice.pop_b)
        engine = get_engine(working.distance_graph(), model)
        matrices.commit_link(
            engine, choice.pop_a, choice.pop_b, link.length_miles,
            stats=stats,
        )
        deviation = matrices.verify(working, stats=stats)
        assert deviation < 1e-8
        assert stats.verifications == 1
        assert stats.max_verify_deviation == deviation
        assert stats.matrix_updates == 1
        assert stats.sweeps_run > 0


class TestGreedyParity:
    @pytest.mark.parametrize("name", ["Sprint", "Level3"])
    def test_greedy_matches_rebuild_path(self, name):
        count = 4 if name == "Level3" else 6
        network = network_by_name(name)
        model = RiskModel.for_network(network)
        clear_engine_registry()
        fast = ProvisioningAnalyzer(network, model).greedy_links(count)
        clear_engine_registry()
        slow = ProvisioningAnalyzer(network, model).greedy_links(
            count, incremental=False
        )
        assert [
            (r.candidate.pop_a, r.candidate.pop_b) for r in fast
        ] == [(r.candidate.pop_a, r.candidate.pop_b) for r in slow]
        for a, b in zip(fast, slow):
            assert a.aggregate_bit_risk == pytest.approx(
                b.aggregate_bit_risk, rel=1e-9
            )
            assert a.baseline_bit_risk == pytest.approx(
                b.baseline_bit_risk, rel=1e-9
            )

    def test_verify_every_knob_matches_default(self):
        network = network_by_name("Sprint")
        model = RiskModel.for_network(network)
        clear_engine_registry()
        analyzer = ProvisioningAnalyzer(network, model)
        checked = analyzer.greedy_links(5, verify_every=2)
        clear_engine_registry()
        plain = ProvisioningAnalyzer(network, model).greedy_links(5)
        assert [r.candidate for r in checked] == [r.candidate for r in plain]
        assert analyzer.stats.verifications == 2
        assert analyzer.stats.max_verify_deviation < 1e-8


class TestCandidateLinksVectorized:
    def test_matches_scalar_reference(self):
        clear_engine_registry()
        network = network_by_name("Sprint")
        got = candidate_links(network)
        # The historical scalar implementation, inlined as the oracle.
        graph = network.distance_graph()
        pops = network.pops()
        sweeps = all_pairs_shortest_paths(graph)
        reference = {}
        for i, pop_a in enumerate(pops):
            dist_map = sweeps[pop_a.pop_id][0]
            for pop_b in pops[i + 1 :]:
                if network.has_link(pop_a.pop_id, pop_b.pop_id):
                    continue
                if pop_b.pop_id not in dist_map:
                    continue
                direct = haversine_miles(pop_a.location, pop_b.location)
                current = dist_map[pop_b.pop_id]
                if direct > 2000.0 or current <= 0.0:
                    continue
                if direct / current < (1.0 - 0.15):
                    reference[(pop_a.pop_id, pop_b.pop_id)] = (
                        direct, current,
                    )
        assert {
            (c.pop_a, c.pop_b) for c in got
        } == set(reference)
        for c in got:
            direct, current = reference[(c.pop_a, c.pop_b)]
            assert c.length_miles == pytest.approx(direct, rel=1e-9)
            assert c.current_route_miles == pytest.approx(current, rel=1e-9)

    def test_candidate_total_matches_recomputation(self):
        clear_engine_registry()
        network = network_by_name("Sprint")
        model = RiskModel.for_network(network)
        analyzer = ProvisioningAnalyzer(network, model)
        ranked = analyzer.rank_candidates(top=3)
        for rec in ranked:
            working = network.copy()
            working.add_link(rec.candidate.pop_a, rec.candidate.pop_b)
            actual = ProvisioningAnalyzer(working, model).aggregate_bit_risk()
            assert rec.aggregate_bit_risk == pytest.approx(actual, rel=0.02)


class TestComponentArrays:
    def test_bit_equal_to_materialised_routes(self):
        clear_engine_registry()
        network = network_by_name("Sprint")
        model = RiskModel.for_network(network)
        engine = get_engine(network.distance_graph(), model)
        source = network.pop_ids()[0]
        from repro.core.strategy import SweepStrategy

        routes = engine.risk_routes_from(source, SweepStrategy.PER_SOURCE)
        dist, risk, reached = engine.component_arrays(
            source, engine.expected_impact(source)
        )
        for target, route in routes.items():
            t = engine.index_of(target)
            assert reached[t]
            # Same float-summation order as the per-path walk: bit-equal.
            assert dist[t] == route.metrics.distance_miles
            assert risk[t] == route.metrics.risk_sum


class TestStatsAccounting:
    def test_greedy_counts_avoided_sweeps(self):
        clear_engine_registry()
        network = network_by_name("Sprint")
        analyzer = ProvisioningAnalyzer(
            network, RiskModel.for_network(network)
        )
        recs = analyzer.greedy_links(3)
        assert len(recs) == 3
        stats = analyzer.stats.as_dict()
        assert stats["matrix_builds"] == 1
        assert stats["matrix_updates"] == 3
        assert stats["sweeps_run"] > 0
        assert stats["sweeps_avoided"] > 0
        assert stats["candidates_scored"] > 0
        assert stats["verifications"] == 0
