"""Tests for repro.session.RoutingSession — the redesigned entry point."""

from __future__ import annotations

import warnings

import pytest

from repro import RoutingSession
from repro.core.ratios import intradomain_ratios
from repro.core.riskroute import RiskRouter
from repro.core.strategy import SweepStrategy, resolve_strategy
from repro.engine import clear_engine_registry
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


@pytest.fixture
def session(diamond_network, diamond_model):
    return RoutingSession(diamond_network, diamond_model)


class TestConstruction:
    def test_network_mode_defaults_model(self, diamond_network):
        session = RoutingSession(diamond_network)
        assert session.model is not None
        assert session.network is diamond_network

    def test_graph_mode_needs_model(self, diamond_network):
        with pytest.raises(ValueError):
            RoutingSession(diamond_network.distance_graph())

    def test_graph_mode_with_model(self, diamond_network, diamond_model):
        session = RoutingSession(
            diamond_network.distance_graph(), diamond_model
        )
        assert session.network is None
        route = session.route("diamond:west", "diamond:east")
        assert "diamond:south" not in route.path

    def test_rejects_other_types(self, diamond_model):
        with pytest.raises(TypeError):
            RoutingSession({"not": "a network"}, diamond_model)

    def test_fails_fast_on_model_mismatch(self, diamond_network):
        graph = diamond_network.distance_graph()
        graph.add_node("orphan")
        with pytest.raises(KeyError):
            RoutingSession(graph, build_diamond_model())


class TestFacadeParity:
    """The facade must agree with the historical API it wraps."""

    def test_pair_matches_riskrouter(self, diamond_network, diamond_model):
        session = RoutingSession(diamond_network, diamond_model)
        router = RiskRouter(diamond_network.distance_graph(), diamond_model)
        assert session.pair("diamond:west", "diamond:east") == (
            router.route_pair("diamond:west", "diamond:east")
        )

    def test_all_pairs_matches_intradomain_ratios(
        self, teliasonera, teliasonera_model
    ):
        session = RoutingSession(teliasonera, teliasonera_model)
        router = RiskRouter(teliasonera.distance_graph(), teliasonera_model)
        legacy = intradomain_ratios(router)
        assert session.all_pairs() == legacy

    def test_routes_from_matches_router(self, session, diamond_network, diamond_model):
        router = RiskRouter(diamond_network.distance_graph(), diamond_model)
        assert session.routes_from("diamond:west") == (
            router.risk_routes_from("diamond:west")
        )
        assert session.shortest_from("diamond:west") == (
            router.shortest_from("diamond:west")
        )

    def test_router_exposes_session_and_engine(
        self, diamond_network, diamond_model
    ):
        router = RiskRouter(diamond_network.distance_graph(), diamond_model)
        assert isinstance(router.session, RoutingSession)
        assert router.engine is router.session.engine

    def test_provision_matches_analyzer(self, diamond_network, diamond_model):
        from repro.core.provisioning import ProvisioningAnalyzer

        session = RoutingSession(diamond_network, diamond_model)
        direct = ProvisioningAnalyzer(
            diamond_network, diamond_model
        ).rank_candidates(top=3)
        assert session.provision(top=3) == direct

    def test_provision_graph_mode_raises(self, diamond_network, diamond_model):
        session = RoutingSession(
            diamond_network.distance_graph(), diamond_model
        )
        with pytest.raises(ValueError):
            session.provision()

    def test_provision_bad_k(self, session):
        with pytest.raises(ValueError):
            session.provision(k=0)


class TestModelLifecycle:
    def test_update_forecast_invalidates(self, diamond_network, session):
        session.all_pairs()
        of = {pop_id: 0.3 for pop_id in diamond_network.pop_ids()}
        assert session.update_forecast(of) is True
        # Same forecast again: fingerprint unchanged, caches kept.
        assert session.update_forecast(of) is False

    def test_update_changes_answers(self, diamond_network):
        session = RoutingSession(diamond_network, build_diamond_model())
        assert "diamond:north" in session.route(
            "diamond:west", "diamond:east"
        ).path
        flipped = build_diamond_model(south_risk=1e-3, north_risk=5e-2)
        assert session.update_model(flipped) is True
        assert "diamond:south" in session.route(
            "diamond:west", "diamond:east"
        ).path

    def test_with_gammas_sibling(self, session):
        relaxed = session.with_gammas(0.0, 0.0)
        assert relaxed is not session
        assert relaxed.network is session.network
        pair = relaxed.pair("diamond:west", "diamond:east")
        assert pair.riskroute.bit_miles == pytest.approx(
            pair.shortest.bit_miles
        )
        # The original session is untouched.
        assert session.model.gamma_h != 0.0


class TestStrategyCoercion:
    def test_enum_and_string_agree(self, session):
        by_enum = session.routes_from(
            "diamond:west", strategy=SweepStrategy.PER_SOURCE
        )
        by_string = session.routes_from("diamond:west", strategy="per-source")
        assert by_enum == by_string

    def test_unknown_string_raises(self, session):
        with pytest.raises(ValueError):
            session.routes_from("diamond:west", strategy="fastest")

    def test_all_pairs_rejects_conflicting_args(self, session):
        with pytest.raises(ValueError):
            session.all_pairs(strategy="exact", exact=False)

    def test_resolve_strategy_bool_positional_warns(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_strategy(True) is SweepStrategy.EXACT
        with pytest.warns(DeprecationWarning):
            assert resolve_strategy(False) is SweepStrategy.PER_SOURCE

    def test_route_per_source_strategy(self, session):
        exact = session.route("diamond:west", "diamond:east")
        approx = session.route(
            "diamond:west", "diamond:east", strategy="per-source"
        )
        assert approx.path[0] == exact.path[0]
        assert approx.path[-1] == exact.path[-1]


class TestInvalidationBoundary:
    """A forecast swap must drop exactly the risk-weighted sweeps:
    geographic (alpha == 0) sweeps stay warm across advisories."""

    def test_forecast_swap_keeps_geographic_sweeps(
        self, diamond_network, session
    ):
        engine = session.engine
        # Warm one geographic and one risk-weighted sweep.
        session.pair("diamond:west", "diamond:east")
        warm = engine.stats()
        assert warm["cached_sweeps"] >= 2
        of = {pop_id: 0.3 for pop_id in diamond_network.pop_ids()}
        assert session.update_forecast(of) is True
        after = engine.stats()
        # Risk sweeps dropped, geographic sweeps survived.
        assert 1 <= after["cached_sweeps"] < warm["cached_sweeps"]
        # The surviving sweep really is the geographic one: a shortest
        # query is a pure cache hit ...
        hits_before = engine.stats()["sweeps"]["hits"]
        misses_before = engine.stats()["sweeps"]["misses"]
        session.shortest("diamond:west", "diamond:east")
        assert engine.stats()["sweeps"]["hits"] == hits_before + 1
        assert engine.stats()["sweeps"]["misses"] == misses_before
        # ... while the risk-weighted sweep must be recomputed.
        session.route("diamond:west", "diamond:east")
        assert engine.stats()["sweeps"]["misses"] == misses_before + 1

    def test_forecast_swap_drops_aggregates(self, session, diamond_network):
        first = session.all_pairs()
        of = {pop_id: 0.25 for pop_id in diamond_network.pop_ids()}
        assert session.update_forecast(of) is True
        second = session.all_pairs()
        assert second is not first  # memoized aggregate was invalidated

    def test_with_gammas_never_leaks_across_settings(self, diamond_network):
        base = RoutingSession(diamond_network, build_diamond_model())
        assert "diamond:north" in base.route(
            "diamond:west", "diamond:east"
        ).path
        # A gamma-free sibling must not be served the gamma-weighted
        # cached sweep: with risk switched off the geometrically
        # shorter (risky) south corridor wins.
        relaxed = base.with_gammas(0.0, 0.0)
        relaxed_route = relaxed.route("diamond:west", "diamond:east")
        assert "diamond:south" in relaxed_route.path
        assert relaxed_route.bit_miles == pytest.approx(
            relaxed.shortest("diamond:west", "diamond:east").bit_miles
        )
        # Swapping back, the original gammas answer correctly again —
        # no residue from the sibling's sweeps either.
        assert "diamond:north" in base.route(
            "diamond:west", "diamond:east"
        ).path

    def test_with_gammas_result_cache_isolated(self, diamond_network):
        base = RoutingSession(diamond_network, build_diamond_model())
        base_ratios = base.all_pairs()
        sibling = base.with_gammas(0.0, 0.0)
        sibling_ratios = sibling.all_pairs()
        # Different gammas, different aggregates — a leaked result
        # cache entry would have returned the identical object.
        assert sibling_ratios is not base_ratios
        assert (
            sibling_ratios.risk_reduction_ratio
            != base_ratios.risk_reduction_ratio
        )
        # And the base session still answers with its own numbers.
        assert base.all_pairs() == base_ratios


class TestSharedCaches:
    def test_two_sessions_share_engine(self, diamond_network, diamond_model):
        a = RoutingSession(diamond_network, diamond_model)
        b = RoutingSession(diamond_network, build_diamond_model())
        assert a.engine is b.engine

    def test_warm_all_pairs_is_memoized(self, session):
        first = session.all_pairs()
        assert session.all_pairs() is first
