"""Tests for repro.graph.core."""

import pytest

from repro.graph.core import EdgeExistsError, Graph, NodeNotFoundError


def triangle() -> Graph:
    return Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 4.0)])


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.node_count == 0
        assert g.edge_count == 0

    def test_from_edges(self):
        g = triangle()
        assert g.node_count == 3
        assert g.edge_count == 3

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a", 1.0)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1.0)

    def test_nan_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", float("nan"))

    def test_duplicate_edge_rejected(self):
        g = triangle()
        with pytest.raises(EdgeExistsError):
            g.add_edge("a", "b", 9.0)
        with pytest.raises(EdgeExistsError):
            g.add_edge("b", "a", 9.0)


class TestMutation:
    def test_set_weight(self):
        g = triangle()
        g.set_weight("a", "b", 7.0)
        assert g.weight("a", "b") == 7.0
        assert g.weight("b", "a") == 7.0

    def test_set_weight_missing_edge(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(KeyError):
            g.set_weight("a", "b", 1.0)

    def test_set_weight_missing_node(self):
        g = triangle()
        with pytest.raises(NodeNotFoundError):
            g.set_weight("a", "zzz", 1.0)

    def test_remove_edge(self):
        g = triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.edge_count == 2

    def test_remove_missing_edge(self):
        g = triangle()
        g.remove_edge("a", "b")
        with pytest.raises(KeyError):
            g.remove_edge("a", "b")

    def test_remove_node_removes_incident_edges(self):
        g = triangle()
        g.remove_node("a")
        assert g.node_count == 2
        assert g.edge_count == 1
        assert g.has_edge("b", "c")

    def test_remove_missing_node(self):
        g = triangle()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("zzz")


class TestQueries:
    def test_contains(self):
        g = triangle()
        assert "a" in g
        assert "z" not in g

    def test_len(self):
        assert len(triangle()) == 3

    def test_edges_yields_each_once(self):
        edges = list(triangle().edges())
        assert len(edges) == 3
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 3

    def test_weight_lookup(self):
        g = triangle()
        assert g.weight("b", "c") == 2.0
        assert g.weight("c", "b") == 2.0

    def test_weight_missing(self):
        with pytest.raises(KeyError):
            triangle().weight("a", "zzz")

    def test_neighbors_is_copy(self):
        g = triangle()
        neighbors = g.neighbors("a")
        neighbors["b"] = 999.0
        assert g.weight("a", "b") == 1.0

    def test_degree(self):
        g = triangle()
        assert g.degree("a") == 2

    def test_average_degree(self):
        assert triangle().average_degree() == pytest.approx(2.0)
        assert Graph().average_degree() == 0.0

    def test_path_weight(self):
        g = triangle()
        assert g.path_weight(["a", "b", "c"]) == pytest.approx(3.0)

    def test_path_weight_broken_path(self):
        g = triangle()
        g.remove_edge("b", "c")
        with pytest.raises(KeyError):
            g.path_weight(["a", "b", "c"])

    def test_nodes_insertion_order(self):
        g = Graph()
        for name in ("x", "a", "m"):
            g.add_node(name)
        assert list(g.nodes()) == ["x", "a", "m"]


class TestCopies:
    def test_copy_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_edge("a", "b")
        assert g.has_edge("a", "b")

    def test_subgraph_keeps_internal_edges(self):
        g = triangle()
        sub = g.subgraph(["a", "b"])
        assert sub.node_count == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("a", "c")

    def test_subgraph_ignores_unknown_nodes(self):
        sub = triangle().subgraph(["a", "ghost"])
        assert sub.node_count == 1

    def test_repr(self):
        assert "nodes=3" in repr(triangle())
