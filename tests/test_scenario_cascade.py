"""Cascade simulator: degeneracy, defense knob, conservation.

The load-bearing contract is the degenerate case: with unlimited
capacity the cascade adds nothing to the initial damage, and survival
over the shared route sample reduces *exactly* to
:func:`repro.core.simulation.route_survival` — same pair enumeration,
same stride, same damage arithmetic, so the rates match bit for bit.
"""

from __future__ import annotations

import pytest

from repro.core.simulation import (
    SimulatedDisaster,
    failed_pops,
    route_survival,
)
from repro.geo.coords import GeoPoint
from repro.scenario import CascadeConfig, CascadeSimulator
from repro.traffic.gravity import TrafficMatrix
from tests.conftest import build_diamond_model, build_diamond_network

SAMPLE_PAIRS = 10


@pytest.fixture(scope="module")
def simulator():
    return CascadeSimulator(
        build_diamond_network(), build_diamond_model(),
        sample_pairs=SAMPLE_PAIRS,
    )


class TestDegeneracy:
    def test_reduces_exactly_to_route_survival(self, simulator):
        """Unlimited capacity + disasters == core route_survival."""
        network = build_diamond_network()
        model = build_diamond_model()
        # Hand-placed footprints: single PoPs, a two-PoP corridor hit,
        # and one harmless mid-Atlantic event (skipped by both paths).
        disasters = [
            SimulatedDisaster("fema_hurricane", GeoPoint(37.0, -95.0), 90.0),
            SimulatedDisaster("fema_tornado", GeoPoint(41.5, -95.0), 25.0),
            SimulatedDisaster("noaa_wind", GeoPoint(39.0, -100.0), 15.0),
            SimulatedDisaster("noaa_earthquake", GeoPoint(39.2, -95.0), 250.0),
            SimulatedDisaster("fema_storm", GeoPoint(35.0, -60.0), 40.0),
        ]
        config = CascadeConfig(headroom=None, redistribute=False)

        hits = {"shortest": 0, "riskroute": 0}
        trials = 0
        for disaster in disasters:
            failed = failed_pops(network, disaster)
            if not failed:
                continue
            for policy in ("shortest", "riskroute"):
                result = simulator.run(failed, (), policy, config)
                assert result.depth == 0
                assert result.overload_trips == 0
                assert set(result.failed_pops) == failed
                hits[policy] += result.route_hits
            trials += simulator.sampled_route_count

        report = route_survival(
            network, model, disasters, sample_pairs=SAMPLE_PAIRS
        )
        assert trials > 0
        assert hits["shortest"] / trials == report.shortest_survival
        assert hits["riskroute"] / trials == report.riskroute_survival

    def test_unlimited_capacity_never_trips(self, simulator):
        result = simulator.run(
            ["diamond:south"], (), "riskroute",
            CascadeConfig(headroom=None),
        )
        assert result.failed_pops == ("diamond:south",)
        assert result.depth == 0
        assert not result.partitioned


class TestDefenseKnob:
    def test_redistribution_arrests_cascade(self, simulator):
        tight = dict(headroom=1.1, alternates=2)
        defended = simulator.run(
            ["diamond:west"], (), "riskroute",
            CascadeConfig(redistribute=True, **tight),
        )
        naive = simulator.run(
            ["diamond:west"], (), "riskroute",
            CascadeConfig(redistribute=False, **tight),
        )
        assert defended.depth < naive.depth

    def test_runs_are_independent(self, simulator):
        first = simulator.run(["diamond:south"], (), "riskroute")
        second = simulator.run(["diamond:south"], (), "riskroute")
        assert first == second


class TestCascadeMechanics:
    def test_no_damage_is_a_fixpoint(self, simulator):
        result = simulator.run((), (), "shortest")
        assert result.depth == 0
        assert result.failed_pops == ()
        assert result.failed_links == ()
        assert result.served_demand == pytest.approx(1.0)
        assert result.route_hits == result.route_trials
        assert not result.partitioned

    def test_pop_failure_kills_incident_links(self, simulator):
        result = simulator.run(
            ["diamond:south"], (), "shortest",
            CascadeConfig(headroom=None),
        )
        assert set(result.failed_links) == {
            ("diamond:east", "diamond:south"),
            ("diamond:south", "diamond:west"),
        }

    def test_link_failure_leaves_pops_up(self, simulator):
        result = simulator.run(
            (), [("diamond:west", "diamond:north")], "shortest",
            CascadeConfig(headroom=None),
        )
        assert result.failed_pops == ()
        assert result.failed_links == (("diamond:north", "diamond:west"),)
        assert not result.partitioned

    def test_served_demand_matches_component_demand(self, simulator):
        """Failing south leaves {west, north, east} connected."""
        result = simulator.run(
            ["diamond:south"], (), "shortest",
            CascadeConfig(headroom=None),
        )
        idx = {pid: i for i, pid in enumerate(simulator.pop_ids)}
        alive = [idx[p] for p in
                 ("diamond:west", "diamond:north", "diamond:east")]
        served = sum(
            simulator.demand[i, j]
            for n, i in enumerate(alive) for j in alive[n + 1:]
        )
        total = sum(
            simulator.demand[i, j]
            for i in range(len(simulator.pop_ids))
            for j in range(i + 1, len(simulator.pop_ids))
        )
        expected = served / total
        assert result.served_demand == pytest.approx(expected)
        assert result.unserved_demand == pytest.approx(1.0 - expected)

    def test_total_collapse_partitions(self, simulator):
        result = simulator.run(
            simulator.pop_ids, (), "shortest",
        )
        assert result.served_demand == 0.0
        assert result.partitioned
        assert result.route_hits == 0


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CascadeConfig(headroom=0.0)
        with pytest.raises(ValueError):
            CascadeConfig(alternates=0)
        with pytest.raises(ValueError):
            CascadeConfig(max_rounds=0)

    def test_unknown_policy_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(["diamond:south"], (), "ecmp")

    def test_unknown_elements_rejected(self, simulator):
        with pytest.raises(KeyError):
            simulator.run(["diamond:atlantis"], (), "shortest")
        with pytest.raises(KeyError):
            simulator.run((), [("diamond:west", "diamond:atlantis")],
                          "shortest")

    def test_foreign_traffic_matrix_rejected(self):
        network = build_diamond_network()
        foreign = TrafficMatrix(
            ["a", "b"], [[0.0, 1.0], [1.0, 0.0]]
        )
        with pytest.raises(ValueError):
            CascadeSimulator(
                network, build_diamond_model(), traffic=foreign
            )
