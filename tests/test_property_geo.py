"""Property-based tests for the geo substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import BoundingBox, GeoPoint
from repro.geo.distance import (
    EARTH_RADIUS_MILES,
    destination_point,
    haversine_miles,
    interpolate_great_circle,
)

lats = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
lons = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
points = st.builds(GeoPoint, lats, lons)


class TestHaversineProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert haversine_miles(a, b) == haversine_miles(b, a)

    @given(points)
    def test_identity(self, p):
        assert haversine_miles(p, p) == 0.0

    @given(points, points)
    def test_non_negative_and_bounded(self, a, b):
        d = haversine_miles(a, b)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_MILES + 1e-6

    @given(points, points, points)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_miles(a, c) <= (
            haversine_miles(a, b) + haversine_miles(b, c) + 1e-6
        )


class TestDestinationProperties:
    @given(points, st.floats(0.0, 360.0), st.floats(0.0, 3000.0))
    @settings(max_examples=50)
    def test_distance_preserved(self, origin, bearing, distance):
        out = destination_point(origin, bearing, distance)
        measured = haversine_miles(origin, out)
        assert abs(measured - distance) < 1e-4 * max(1.0, distance)


class TestInterpolationProperties:
    @given(points, points, st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_on_segment(self, a, b, fraction):
        total = haversine_miles(a, b)
        if total > EARTH_RADIUS_MILES * 3.0:
            return  # near-antipodal pairs are rejected by design
        mid = interpolate_great_circle(a, b, fraction)
        d1 = haversine_miles(a, mid)
        d2 = haversine_miles(mid, b)
        assert abs((d1 + d2) - total) < 1e-4 * max(1.0, total)


class TestBoundingBoxProperties:
    @given(points, st.floats(0.1, 5.0))
    @settings(max_examples=50)
    def test_expanded_contains_original_center(self, p, margin):
        lat_pad = min(1.0, 89.0 - abs(p.lat))
        box = BoundingBox(
            max(-90.0, p.lat - lat_pad),
            max(-180.0, p.lon - 1.0),
            min(90.0, p.lat + lat_pad),
            min(180.0, p.lon + 1.0),
        )
        grown = box.expanded(margin)
        assert grown.contains(p)
        for corner in box.corners():
            assert grown.contains(corner)
