"""Tests for repro.graph.components."""

import pytest

from repro.graph.components import (
    articulation_points,
    bridges,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph.core import Graph


def two_triangles_with_bridge() -> Graph:
    """Triangles a-b-c and d-e-f joined by bridge c-d."""
    return Graph.from_edges(
        [
            ("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0),
            ("d", "e", 1.0), ("e", "f", 1.0), ("d", "f", 1.0),
            ("c", "d", 1.0),
        ]
    )


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(two_triangles_with_bridge())) == 1

    def test_two_components(self):
        g = Graph.from_edges([("a", "b", 1.0), ("c", "d", 1.0)])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]

    def test_isolated_node_is_component(self):
        g = Graph()
        g.add_node("solo")
        assert connected_components(g) == [["solo"]]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []


class TestIsConnected:
    def test_connected(self):
        assert is_connected(two_triangles_with_bridge())

    def test_disconnected(self):
        g = Graph.from_edges([("a", "b", 1.0)])
        g.add_node("island")
        assert not is_connected(g)

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())


class TestLargestComponent:
    def test_picks_largest(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0), ("x", "y", 1.0)])
        assert sorted(largest_component(g)) == ["a", "b", "c"]

    def test_empty(self):
        assert largest_component(Graph()) == []


class TestArticulationPoints:
    def test_bridge_endpoints_are_articulation(self):
        points = articulation_points(two_triangles_with_bridge())
        assert points == {"c", "d"}

    def test_cycle_has_none(self):
        g = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0), ("c", "a", 1.0)]
        )
        assert articulation_points(g) == set()

    def test_path_interior_nodes(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)])
        assert articulation_points(g) == {"b", "c"}

    def test_star_center(self):
        g = Graph.from_edges(
            [("hub", "s1", 1.0), ("hub", "s2", 1.0), ("hub", "s3", 1.0)]
        )
        assert articulation_points(g) == {"hub"}


class TestBridges:
    def test_single_bridge(self):
        found = bridges(two_triangles_with_bridge())
        assert [frozenset(e) for e in found] == [frozenset(("c", "d"))]

    def test_tree_all_edges_are_bridges(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        assert len(bridges(g)) == 2

    def test_cycle_has_no_bridges(self):
        g = Graph.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0), ("c", "a", 1.0)]
        )
        assert bridges(g) == []
