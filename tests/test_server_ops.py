"""The declarative op registry: round-trips, versioning, generation.

One table (:mod:`repro.server.ops`) drives parsing, validation,
dispatch, shard routing, client wrappers and CLI subcommands.  These
tests pin the derived views to the table, round-trip every op through
its own declared examples, and exercise the protocol-v2 version
contract on both sides of the wire (satellites 1, 3 and 4 of the
sharded-serving issue).
"""

from __future__ import annotations

import inspect
import json
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.server import (
    REGISTRY,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server import ops, protocol
from repro.server.coalesce import PendingRequest
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_reply,
    parse_request,
)
from repro.server.service import QueryService
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _example_params(spec: ops.OpSpec) -> dict:
    """The declared example value for every param that has one."""
    return {
        p.name: p.example for p in spec.params if p.example is not None
    }


class TestRegistryShape:
    def test_every_spec_well_formed(self):
        for spec in ops.registered_ops():
            assert spec.kind in ops.KINDS
            assert spec.routing in ops.ROUTINGS
            assert spec.doc
            for param in spec.params:
                assert param.name.isidentifier()
                if param.required:
                    # Required params must carry an example so the
                    # round-trip test below can exercise the op.
                    assert param.example is not None, (
                        spec.name, param.name
                    )

    def test_derived_views_match_table(self):
        assert set(ops.op_names()) == set(REGISTRY)
        assert set(ops.query_op_names()) == {
            s.name for s in REGISTRY.values()
            if s.kind == "read" and s.queued
        }
        assert set(ops.control_op_names()) == {
            s.name for s in REGISTRY.values() if s.is_barrier
        }
        assert ops.retry_safe_op_names() == {
            s.name for s in REGISTRY.values()
            if s.kind in ("read", "control")
        }
        # The protocol module's lazy views resolve to the same sets.
        assert set(protocol.OPS) == set(REGISTRY)
        assert set(protocol.CONTROL_OPS) == {
            "update_forecast", "ingest", "stats", "subscribe",
        }

    def test_barrier_and_retry_semantics(self):
        assert REGISTRY["update_forecast"].is_barrier
        assert not REGISTRY["update_forecast"].retry_safe
        assert REGISTRY["ingest"].is_barrier
        assert not REGISTRY["ingest"].retry_safe
        assert REGISTRY["stats"].is_barrier
        assert REGISTRY["stats"].retry_safe
        assert REGISTRY["subscribe"].is_barrier
        assert REGISTRY["subscribe"].retry_safe
        for name in (
            "route", "pair", "ratios", "provision", "scenario", "shared_risk",
        ):
            assert not REGISTRY[name].is_barrier
            assert REGISTRY[name].retry_safe

    def test_cli_names(self):
        assert ops.spec_for_cli("update-forecast").name == "update_forecast"
        for spec in ops.registered_ops():
            assert ops.spec_for_cli(spec.command) is spec
        with pytest.raises(KeyError):
            ops.spec_for_cli("no-such-command")

    def test_get_spec_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            ops.get_spec("frobnicate")
        assert err.value.code == "unknown_op"


class TestValidateParams:
    def test_defaults_cover_every_declared_param(self):
        for spec in ops.registered_ops():
            if any(p.required for p in spec.params):
                continue
            validated = ops.validate_params(spec, {})
            assert set(validated) == {p.name for p in spec.params}

    def test_unknown_param_rejected(self):
        with pytest.raises(ProtocolError) as err:
            ops.validate_params(REGISTRY["pair"], {
                "source": "a", "target": "b", "exact": True,
            })
        assert err.value.code == "bad_request"
        assert "exact" in err.value.message

    def test_missing_required_rejected(self):
        with pytest.raises(ProtocolError) as err:
            ops.validate_params(REGISTRY["route"], {"source": "a"})
        assert err.value.code == "bad_request"
        assert "target" in err.value.message

    @given(st.text(min_size=1).filter(
        lambda s: s not in {p.name for p in REGISTRY["pair"].params}
    ))
    @settings(max_examples=30, deadline=None)
    def test_any_undeclared_name_is_bad_request(self, name):
        with pytest.raises(ProtocolError) as err:
            ops.validate_params(
                REGISTRY["pair"],
                {"source": "a", "target": "b", name: 1},
            )
        assert err.value.code == "bad_request"


json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31),
    st.floats(allow_nan=False, allow_infinity=False), st.text(),
)


class TestEnvelopeRoundTripProperty:
    @given(
        op=st.sampled_from(sorted(REGISTRY)),
        request_id=st.one_of(st.none(), st.integers(), st.text()),
        version=st.integers(1, PROTOCOL_VERSION),
        extra=st.dictionaries(
            st.text(min_size=1).filter(
                lambda k: k not in ("op", "id", "v")
            ),
            json_scalars,
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_parse_inverts_encode(self, op, request_id, version, extra):
        """Any well-formed envelope parses back field-for-field."""
        line = json.dumps(
            {"op": op, "id": request_id, "v": version, **extra}
        ).encode()
        request = parse_request(line)
        assert request.op == op
        assert request.id == request_id
        assert request.v == version
        assert request.params == extra

    @given(version=st.integers(PROTOCOL_VERSION + 1, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_any_future_version_is_typed(self, version):
        with pytest.raises(ProtocolError) as err:
            parse_request(
                json.dumps({"op": "health", "v": version}).encode()
            )
        assert err.value.code == "unsupported_version"

    @pytest.mark.parametrize("bad", [True, "2", 2.0, 0, -1])
    def test_non_integer_or_ancient_version_is_bad_request(self, bad):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps({"op": "health", "v": bad}).encode())
        assert err.value.code == "bad_request"

    def test_v1_requests_still_accepted(self):
        assert parse_request(b'{"op": "health"}').v == 1


class TestHandlerRoundTrip:
    """Examples → validate → handler → encode → parse, for every op."""

    def test_every_handler_op_round_trips(self):
        session = RoutingSession(
            build_diamond_network(), build_diamond_model()
        )
        service = QueryService(session)
        exercised = []
        for spec in ops.registered_ops():
            if spec.handler is None:
                continue
            params = ops.validate_params(spec, _example_params(spec))
            result = spec.handler(service, params)
            assert isinstance(result, dict)
            line = encode_reply(
                7, result,
                fingerprint=(
                    session.engine.risk_fingerprint
                    if spec.fingerprint_reply else None
                ),
            )
            reply = json.loads(line)
            assert reply["ok"] is True
            assert reply["v"] == PROTOCOL_VERSION
            assert reply["result"] == json.loads(json.dumps(result))
            exercised.append(spec.name)
        assert exercised == [
            "route", "pair", "ratios", "provision", "scenario", "shared_risk",
        ]

    def test_planned_demands_execute_in_batches(self):
        """Every op with a plan callable survives the batch path."""
        session = RoutingSession(
            build_diamond_network(), build_diamond_model()
        )
        service = QueryService(session)
        batch = []
        for spec in ops.registered_ops():
            if spec.handler is None:
                continue
            batch.append(PendingRequest(
                request=Request(
                    op=spec.name, id=spec.name,
                    params=_example_params(spec), v=PROTOCOL_VERSION,
                ),
                writer=None, arrived=0.0,
            ))
        service.execute_batch(batch)
        for item in batch:
            assert item.ok, item.reply
            reply = json.loads(item.reply)
            assert reply["id"] == item.request.op  # id echoed verbatim
            assert reply["ok"] is True


class TestWireVersioning:
    """The daemon's half of the version contract (satellite 3's peer)."""

    def test_future_version_request_gets_typed_error(self):
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002),
        )
        host, port = thread.start()
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                stream = sock.makefile("rwb")
                stream.write(json.dumps(
                    {"id": 1, "op": "health", "v": 99}
                ).encode() + b"\n")
                stream.flush()
                reply = json.loads(stream.readline())
        finally:
            thread.stop()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "unsupported_version"
        assert reply["v"] == PROTOCOL_VERSION

    def test_client_rejects_future_reply_version(self):
        """A v99 reply raises typed unsupported_version, not KeyError."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()

        def _serve_one():
            conn, _ = server.accept()
            stream = conn.makefile("rwb")
            request = json.loads(stream.readline())
            stream.write(json.dumps({
                "id": request["id"], "ok": True, "v": 99,
                "future_field": {"shape": "unknowable"},
            }).encode() + b"\n")
            stream.flush()
            conn.close()

        thread = threading.Thread(target=_serve_one, daemon=True)
        thread.start()
        try:
            client = RiskRouteClient(host, port, timeout=10)
            with pytest.raises(ServerError) as err:
                client.health()
            assert err.value.code == "unsupported_version"
            assert "v99" in str(err.value)
            client.close()
        finally:
            thread.join(timeout=10)
            server.close()

    def test_client_sends_its_protocol_version(self):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        seen = {}

        def _serve_one():
            conn, _ = server.accept()
            stream = conn.makefile("rwb")
            request = json.loads(stream.readline())
            seen.update(request)
            stream.write(json.dumps({
                "id": request["id"], "ok": True,
                "v": PROTOCOL_VERSION, "result": {"status": "ok"},
            }).encode() + b"\n")
            stream.flush()
            conn.close()

        thread = threading.Thread(target=_serve_one, daemon=True)
        thread.start()
        try:
            client = RiskRouteClient(host, port, timeout=10)
            assert client.health() == {"status": "ok"}
            client.close()
        finally:
            thread.join(timeout=10)
            server.close()
        assert seen["v"] == PROTOCOL_VERSION
        assert seen["op"] == "health"


class TestGeneratedClientWrappers:
    def test_wrapper_signatures_mirror_registry(self):
        for spec in ops.registered_ops():
            method = getattr(RiskRouteClient, spec.name)
            signature = inspect.signature(method)
            names = list(signature.parameters)
            assert names[0] == "self"
            declared = [p.name for p in spec.params]
            # Hand-written methods (provision's deprecation shim,
            # update_forecast's token plumbing) may extend the declared
            # surface but never drop a declared param.
            for name in declared:
                assert name in names, (spec.name, name)

    def test_generated_wrappers_are_marked(self):
        # pair/route/ratios/stats/health come from the registry.
        for name in ("pair", "route", "ratios", "stats", "health"):
            method = RiskRouteClient.__dict__[name]
            assert method.__name__ == name
            assert ops.REGISTRY[name].doc in (method.__doc__ or "")

    def test_hand_written_methods_survive_generation(self):
        provision = inspect.signature(RiskRouteClient.provision)
        assert "exact" in provision.parameters  # deprecation shim
        update = inspect.signature(RiskRouteClient.update_forecast)
        assert "token" in update.parameters

    def test_wrappers_reject_undeclared_kwargs(self):
        with pytest.raises(TypeError):
            RiskRouteClient.__dict__["pair"](
                object(), source="a", target="b", exact=True,
            )

    def test_generic_call_and_wrapper_agree(self):
        thread = ServerThread(
            RoutingSession(build_diamond_network(), build_diamond_model()),
            ServerConfig(batch_linger=0.002),
        )
        host, port = thread.start()
        try:
            with RiskRouteClient(host, port) as client:
                via_wrapper = client.pair("diamond:west", "diamond:east")
                via_call = client.call(
                    "pair", source="diamond:west", target="diamond:east"
                )
                assert via_wrapper == via_call
        finally:
            thread.stop()
