"""Tests for repro.risk (historical, forecasted, impact, composed)."""

import numpy as np
import pytest

from repro.forecast.risk import ForecastSnapshot
from repro.geo.coords import GeoPoint
from repro.risk.forecasted import ForecastedRiskModel, no_forecast
from repro.risk.historical import RISK_UNIT_MILES, HistoricalRiskModel
from repro.risk.impact import ImpactModel, network_impact_model
from repro.risk.model import DEFAULT_GAMMA_F, DEFAULT_GAMMA_H, RiskModel
from repro.stats.kde import GaussianKDE
from repro.topology.network import Network, PoP

RISKY_SPOT = GeoPoint(30.0, -90.0)
SAFE_SPOT = GeoPoint(45.0, -110.0)


def toy_historical() -> HistoricalRiskModel:
    events = [
        GeoPoint(30.0 + d, -90.0 + d) for d in (-0.2, -0.1, 0.0, 0.1, 0.2)
    ]
    return HistoricalRiskModel({"storm": GaussianKDE(events, 40.0)})


def toy_network() -> Network:
    net = Network("toy")
    net.add_pop(PoP("toy:risky", "Risky", RISKY_SPOT))
    net.add_pop(PoP("toy:safe", "Safe", SAFE_SPOT))
    net.add_link("toy:risky", "toy:safe")
    return net


class TestHistorical:
    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            HistoricalRiskModel({})

    def test_negative_weight_rejected(self):
        events = [RISKY_SPOT]
        with pytest.raises(ValueError):
            HistoricalRiskModel(
                {"storm": GaussianKDE(events, 10.0)}, weights={"storm": -1.0}
            )

    def test_risk_higher_near_events(self):
        model = toy_historical()
        assert model.risk_at(RISKY_SPOT) > model.risk_at(SAFE_SPOT)

    def test_equation2_normalisation(self):
        """Risk = density * sigma * unit, per the module's convention."""
        model = toy_historical()
        kde = GaussianKDE(
            [GeoPoint(30.0 + d, -90.0 + d) for d in (-0.2, -0.1, 0.0, 0.1, 0.2)],
            40.0,
        )
        expected = kde.density(RISKY_SPOT) * 40.0 * RISK_UNIT_MILES
        assert model.risk_at(RISKY_SPOT) == pytest.approx(expected)

    def test_weights_scale_risk(self):
        base = toy_historical()
        doubled = base.reweighted({"storm": 2.0})
        assert doubled.risk_at(RISKY_SPOT) == pytest.approx(
            2.0 * base.risk_at(RISKY_SPOT)
        )

    def test_zero_weight_removes_class(self):
        base = toy_historical()
        muted = base.reweighted({"storm": 0.0})
        assert muted.risk_at(RISKY_SPOT) == 0.0

    def test_pop_risks(self):
        risks = toy_historical().pop_risks(toy_network())
        assert set(risks) == {"toy:risky", "toy:safe"}
        assert risks["toy:risky"] > risks["toy:safe"]

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            toy_historical().class_risk_many("quake", [RISKY_SPOT])

    def test_risk_many_empty(self):
        assert toy_historical().risk_many([]).shape == (0,)

    def test_risks_array_matches_risk_many(self):
        model = toy_historical()
        points = [RISKY_SPOT, SAFE_SPOT]
        latlon = np.array([(p.lat, p.lon) for p in points])
        np.testing.assert_array_equal(
            model.risks_array(latlon), model.risk_many(points)
        )

    def test_fingerprint_tracks_weights_and_kdes(self):
        base = toy_historical()
        assert base.fingerprint == toy_historical().fingerprint
        assert base.fingerprint != base.reweighted({"storm": 2.0}).fingerprint

    def test_pop_risks_cached_on_disk(self, tmp_path):
        from repro.stats.fieldcache import RiskFieldCache

        events = [GeoPoint(30.0 + d, -90.0 + d) for d in (-0.1, 0.0, 0.1)]
        kdes = {"storm": GaussianKDE(events, 40.0)}
        net = toy_network()
        cold_cache = RiskFieldCache(tmp_path)
        cold = HistoricalRiskModel(kdes, cache=cold_cache).pop_risks(net)
        assert cold_cache.stats.misses == 1 and cold_cache.stats.hits == 0
        # A fresh model instance (no in-process memo) hits the disk.
        warm_cache = RiskFieldCache(tmp_path)
        warm = HistoricalRiskModel(kdes, cache=warm_cache).pop_risks(net)
        assert warm_cache.stats.hits == 1 and warm_cache.stats.misses == 0
        assert warm == cold


class TestDefaultOhCacheRegression:
    def test_same_name_different_networks_get_distinct_oh(self, monkeypatch):
        """Two distinct networks sharing a name must not share o_h.

        The old module-level ``_DEFAULT_OH_CACHE`` keyed by
        ``network.name`` only, so the second network silently reused
        the first one's vector; content-fingerprint keying fixes it.
        """
        import repro.risk.model as risk_model

        monkeypatch.setattr(
            risk_model, "default_historical_model", toy_historical
        )
        near = Network("dup")
        near.add_pop(PoP("dup:a", "A", RISKY_SPOT))
        far = Network("dup")  # same name, different geography
        far.add_pop(PoP("dup:a", "A", SAFE_SPOT))
        model_near = RiskModel.for_network(near)
        model_far = RiskModel.for_network(far)
        assert model_near.historical_risk("dup:a") > model_far.historical_risk(
            "dup:a"
        )


class TestForecasted:
    def snapshot(self):
        return ForecastSnapshot(RISKY_SPOT, 50.0, 150.0)

    def test_no_forecast_zero(self):
        model = no_forecast()
        assert model.risk_at(RISKY_SPOT) == 0.0
        assert model.snapshot_count == 0

    def test_single_snapshot(self):
        model = ForecastedRiskModel([self.snapshot()])
        assert model.risk_at(RISKY_SPOT) == 100.0
        assert model.risk_at(SAFE_SPOT) == 0.0

    def test_max_over_snapshots(self):
        weak = ForecastSnapshot(RISKY_SPOT, 0.0, 150.0)
        strong = self.snapshot()
        model = ForecastedRiskModel([weak, strong])
        assert model.risk_at(RISKY_SPOT) == 100.0

    def test_pop_risks_and_scope(self):
        model = ForecastedRiskModel([self.snapshot()])
        net = toy_network()
        risks = model.pop_risks(net)
        assert risks["toy:risky"] == 100.0
        assert risks["toy:safe"] == 0.0
        assert model.pops_in_scope(net) == ["toy:risky"]
        assert model.pops_under_hurricane(net) == ["toy:risky"]

    def test_risk_many(self):
        model = ForecastedRiskModel([self.snapshot()])
        assert model.risk_many([RISKY_SPOT, SAFE_SPOT]) == [100.0, 0.0]


class TestImpact:
    def test_network_impact_shares_sum_to_one(self, teliasonera):
        impact = network_impact_model(teliasonera)
        assert sum(impact.shares().values()) == pytest.approx(1.0)

    def test_impact_sum(self, teliasonera):
        impact = network_impact_model(teliasonera)
        ids = teliasonera.pop_ids()
        assert impact.impact(ids[0], ids[1]) == pytest.approx(
            impact.share(ids[0]) + impact.share(ids[1])
        )

    def test_mean_share(self, teliasonera):
        impact = network_impact_model(teliasonera)
        assert impact.mean_share() == pytest.approx(1.0 / 15.0)

    def test_cached_by_name(self, teliasonera):
        assert network_impact_model(teliasonera) is network_impact_model(
            teliasonera
        )


class TestRiskModel:
    def toy_model(self, gamma_h=1e5, gamma_f=1e3):
        shares = {"a": 0.5, "b": 0.5}
        oh = {"a": 0.01, "b": 0.002}
        of = {"a": 0.0, "b": 100.0}
        return RiskModel(shares, oh, of, gamma_h, gamma_f)

    def test_defaults_match_paper(self):
        assert DEFAULT_GAMMA_H == 1e5
        assert DEFAULT_GAMMA_F == 1e3

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            self.toy_model(gamma_h=-1.0)

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RiskModel({"a": 1.0}, {"a": 0.1}, {"b": 0.0})

    def test_node_risk_composition(self):
        model = self.toy_model()
        assert model.node_risk("a") == pytest.approx(1e5 * 0.01)
        assert model.node_risk("b") == pytest.approx(1e5 * 0.002 + 1e3 * 100.0)

    def test_impact(self):
        assert self.toy_model().impact("a", "b") == pytest.approx(1.0)

    def test_unknown_pop(self):
        model = self.toy_model()
        with pytest.raises(KeyError):
            model.share("zzz")
        with pytest.raises(KeyError):
            model.historical_risk("zzz")
        with pytest.raises(KeyError):
            model.forecast_risk("zzz")

    def test_with_gammas(self):
        model = self.toy_model().with_gammas(1e6, 0.0)
        assert model.node_risk("b") == pytest.approx(1e6 * 0.002)

    def test_with_forecast_risk(self):
        model = self.toy_model().with_forecast_risk({"a": 50.0, "b": 0.0})
        assert model.node_risk("a") == pytest.approx(1e5 * 0.01 + 1e3 * 50.0)

    def test_with_forecast_risk_mismatch(self):
        with pytest.raises(ValueError):
            self.toy_model().with_forecast_risk({"a": 0.0})

    def test_mean_pop_risk(self):
        assert self.toy_model().mean_pop_risk() == pytest.approx(0.006)

    def test_for_network_integration(self, teliasonera, teliasonera_model):
        model = teliasonera_model
        assert set(model.pop_ids()) == set(teliasonera.pop_ids())
        assert sum(model.share(p) for p in model.pop_ids()) == pytest.approx(1.0)
        assert all(model.historical_risk(p) > 0 for p in model.pop_ids())
        assert all(model.forecast_risk(p) == 0.0 for p in model.pop_ids())
