"""Unit tests for the NDJSON wire protocol layer."""

from __future__ import annotations

import json

import pytest

from repro.server import protocol
from repro.server.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    encode_error,
    encode_reply,
    parse_request,
)


class TestParseRequest:
    def test_happy_path(self):
        request = parse_request(
            b'{"id": 7, "op": "route", "source": "a", "target": "b"}'
        )
        assert request.op == "route"
        assert request.id == 7
        assert request.params == {"source": "a", "target": "b"}

    def test_id_defaults_to_none(self):
        assert parse_request(b'{"op": "health"}').id is None

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"this is not json\n")
        assert excinfo.value.code == "bad_request"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"[1, 2, 3]")
        assert excinfo.value.code == "bad_request"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"id": 1}')
        assert excinfo.value.code == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "frobnicate"}')
        assert excinfo.value.code == "unknown_op"

    def test_every_op_parses(self):
        for op in OPS:
            assert parse_request(
                json.dumps({"op": op}).encode()
            ).op == op


class TestEncode:
    def test_reply_line(self):
        line = encode_reply(3, {"x": 1.5}, fingerprint="abcd")
        assert line.endswith(b"\n")
        payload = json.loads(line)
        assert payload == {
            "id": 3, "ok": True, "v": protocol.PROTOCOL_VERSION,
            "result": {"x": 1.5}, "fingerprint": "abcd",
        }

    def test_reply_without_fingerprint(self):
        payload = json.loads(encode_reply(None, {}))
        assert "fingerprint" not in payload

    def test_error_line(self):
        payload = json.loads(encode_error(9, "timeout", "too slow"))
        assert payload["ok"] is False
        assert payload["error"] == {"code": "timeout", "message": "too slow"}

    def test_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            encode_error(1, "not-a-code", "nope")

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError("not-a-code", "nope")

    def test_float_round_trip_is_exact(self):
        # The concurrency-parity tests compare served floats to direct
        # session answers for equality; JSON must not perturb them.
        value = 1234.5678901234567
        assert json.loads(encode_reply(1, {"v": value}))["result"]["v"] == value


class TestSerializers:
    def test_route_to_dict(self, diamond_network, diamond_model):
        from repro import RoutingSession

        session = RoutingSession(diamond_network, diamond_model)
        route = session.route("diamond:west", "diamond:east")
        payload = protocol.route_to_dict(route)
        assert payload["source"] == "diamond:west"
        assert payload["target"] == "diamond:east"
        assert payload["path"] == list(route.path)
        assert payload["bit_miles"] == route.bit_miles
        assert payload["bit_risk_miles"] == route.bit_risk_miles

    def test_pair_to_dict(self, diamond_network, diamond_model):
        from repro import RoutingSession

        session = RoutingSession(diamond_network, diamond_model)
        pair = session.pair("diamond:west", "diamond:east")
        payload = protocol.pair_to_dict(pair)
        assert payload["risk_ratio"] == pair.risk_ratio
        assert payload["distance_ratio"] == pair.distance_ratio
        assert payload["shortest"]["path"] == list(pair.shortest.path)

    def test_ratios_to_dict(self, diamond_network, diamond_model):
        from repro import RoutingSession

        result = RoutingSession(diamond_network, diamond_model).all_pairs()
        payload = protocol.ratios_to_dict(result)
        assert payload["pair_count"] == result.pair_count
        assert payload["risk_reduction_ratio"] == result.risk_reduction_ratio

    def test_error_codes_closed_set(self):
        assert "overloaded" in ERROR_CODES
        assert "timeout" in ERROR_CODES
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)
