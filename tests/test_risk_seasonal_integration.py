"""Integration: seasonal risk + anticipatory forecasts through routing."""

import pytest

from repro.core.ratios import intradomain_ratios
from repro.core.riskroute import RiskRouter
from repro.disasters.seasonal import seasonal_historical_model
from repro.forecast.projection import AnticipatoryRiskField
from repro.forecast.storms import storm_advisories
from repro.risk.model import RiskModel
from repro.topology.zoo import network_by_name


class TestSeasonalRouting:
    @pytest.fixture(scope="class")
    def network(self):
        return network_by_name("Deutsche")

    def test_seasonal_models_route_validly(self, network):
        graph = network.distance_graph()
        for month in (2, 9):
            model = RiskModel.for_network(
                network,
                historical=seasonal_historical_model(month),
                gamma_h=1e6,
            )
            result = intradomain_ratios(RiskRouter(graph, model))
            assert 0.0 <= result.risk_reduction_ratio < 1.0
            assert result.distance_increase_ratio >= 0.0

    def test_september_prices_gulf_higher(self, network):
        september = RiskModel.for_network(
            network, historical=seasonal_historical_model(9)
        )
        february = RiskModel.for_network(
            network, historical=seasonal_historical_model(2)
        )
        miami = "Deutsche:Miami, FL"
        assert september.historical_risk(miami) > february.historical_risk(
            miami
        )


class TestAnticipatoryRouting:
    def test_anticipatory_reroutes_before_reactive(self):
        """At a pre-landfall Sandy advisory, anticipatory o_f must give
        RiskRoute at least as much to avoid as the reactive field."""
        network = network_by_name("Tinet")
        graph = network.distance_graph()
        base = RiskModel.for_network(network)

        advisory = storm_advisories("Sandy")[40]  # storm still offshore
        from repro.forecast.risk import snapshot_from_advisory
        from repro.risk.forecasted import ForecastedRiskModel

        reactive_of = ForecastedRiskModel(
            [snapshot_from_advisory(advisory)]
        ).pop_risks(network)
        anticipatory_of = AnticipatoryRiskField(advisory).pop_risks(network)

        assert sum(anticipatory_of.values()) >= sum(reactive_of.values())

        reactive = intradomain_ratios(
            RiskRouter(graph, base.with_forecast_risk(reactive_of))
        )
        anticipatory = intradomain_ratios(
            RiskRouter(graph, base.with_forecast_risk(anticipatory_of))
        )
        # Both are valid ratio results; anticipatory sees >= exposure.
        assert anticipatory.risk_reduction_ratio >= 0.0
        assert reactive.risk_reduction_ratio >= 0.0

    def test_anticipatory_field_works_in_risk_model(self):
        network = network_by_name("NTT")
        base = RiskModel.for_network(network)
        advisory = storm_advisories("Irene")[50]
        of_map = AnticipatoryRiskField(advisory).pop_risks(network)
        model = base.with_forecast_risk(of_map)
        for pop_id in model.pop_ids():
            assert model.forecast_risk(pop_id) == of_map[pop_id]
