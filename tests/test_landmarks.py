"""Landmark (ALT) pruning tests.

The acceptance bar for the bound family is *exactness*: a pruned
targeted query must return the same distance as the unpruned sweep —
bit-for-bit, since both accumulate ``(d + w) + alpha * risk`` in path
order.  The hypothesis harness draws random geometric graphs (the
admissible-by-construction case for the great-circle bound: weights are
at least the great-circle distance) and random alphas, and checks the
property along with the pruning actually pruning.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.arrays import CsrGraph
from repro.engine.landmarks import (
    LandmarkIndex,
    TargetedResult,
    targeted_sweep,
)
from repro.engine.sweep import csr_sweep
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_miles
from repro.graph.core import Graph

_INF = float("inf")


def geometric_csr(points, edges, risk_scale=1.0):
    """CSR + latlon + entry risk for a gc-weighted geometric graph."""
    g = Graph()
    for i in range(len(points)):
        g.add_node(f"n{i}")
    for i, j in edges:
        w = max(
            haversine_miles(GeoPoint(*points[i]), GeoPoint(*points[j])),
            1e-9,
        )
        g.add_edge(f"n{i}", f"n{j}", w)
    csr = CsrGraph(g)
    risk = risk_scale * np.linspace(0.2, 1.7, len(points))
    entry_risk = risk[np.asarray(csr.indices, dtype=np.int64)]
    latlon = np.asarray(points, dtype=np.float64)
    return csr, entry_risk, latlon


def grid_points(rows, cols, spacing_deg=1.0):
    """Points on a lat/lon grid around the continental-US interior."""
    return [
        (35.0 + r * spacing_deg, -100.0 + c * spacing_deg)
        for r in range(rows)
        for c in range(cols)
    ]


def grid_edges(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


@st.composite
def geometric_graphs(draw):
    """Connected-ish random geometric graphs with coordinates."""
    n = draw(st.integers(2, 12))
    points = [
        (
            draw(st.floats(28.0, 46.0, allow_nan=False)),
            draw(st.floats(-120.0, -75.0, allow_nan=False)),
        )
        for _ in range(n)
    ]
    # A random spanning chain plus extra chords.
    edges = [(i, i + 1) for i in range(n - 1)]
    pairs = [(i, j) for i in range(n) for j in range(i + 2, n)]
    extra = draw(st.integers(0, min(len(pairs), n)))
    if pairs and extra:
        edges += draw(
            st.lists(
                st.sampled_from(pairs),
                min_size=extra,
                max_size=extra,
                unique=True,
            )
        )
    alpha = draw(st.floats(0.0, 2.0, allow_nan=False))
    source = draw(st.integers(0, n - 1))
    target = draw(st.integers(0, n - 1))
    return points, sorted(set(edges)), alpha, source, target


class TestLandmarkProperties:
    """Satellite: pruned distances equal unpruned, property-tested."""

    @given(geometric_graphs())
    @settings(max_examples=60, deadline=None)
    def test_pruned_equals_unpruned(self, case):
        points, edges, alpha, source, target = case
        csr, entry_risk, latlon = geometric_csr(points, edges)
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=4, latlon=latlon
        )
        bounds = index.lower_bounds(target)
        pruned = targeted_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, source, target, alpha, bounds=bounds,
        )
        full = csr_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, source, alpha,
        )
        if full.dist[target] == _INF:
            assert not pruned.reachable
        else:
            # Bit-for-bit: both kernels accumulate the same float ops.
            assert pruned.distance == full.dist[target]
            assert pruned.path[0] == source
            assert pruned.path[-1] == target
            assert _path_cost(csr, entry_risk, pruned.path, alpha) == (
                pruned.distance
            )

    @given(geometric_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bounds_are_admissible(self, case):
        points, edges, alpha, _, target = case
        csr, entry_risk, latlon = geometric_csr(points, edges)
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=4, latlon=latlon
        )
        h = index.lower_bounds(target)
        # True alpha-weighted distances *to* the target (undirected
        # graph: sweep from the target).
        full = csr_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, target, alpha,
        )
        for v in range(len(points)):
            true = full.dist[v]
            if true == _INF:
                continue  # inf bounds only ever mark unreachable nodes
            # Strict inequality can fail to the last ulp only through
            # float noise in the haversine; allow exactly that.
            assert h[v] <= true * (1 + 1e-12) + 1e-9


def _path_cost(csr, entry_risk, path, alpha):
    """Re-accumulate a path with the kernels' exact float op order."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        for k in range(csr.indptr_list[u], csr.indptr_list[u + 1]):
            if csr.indices_list[k] == v:
                total = total + csr.weights_list[k] + alpha * entry_risk[k]
                break
        else:  # pragma: no cover - path edges always exist
            raise AssertionError(f"no edge {u}->{v}")
    return total


class TestTargetedSweep:
    def test_pruning_skips_settlements_on_a_grid(self):
        rows, cols = 8, 8
        csr, entry_risk, latlon = geometric_csr(
            grid_points(rows, cols), grid_edges(rows, cols)
        )
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=6, latlon=latlon
        )
        source, target = 0, cols - 1  # corner to corner of the top row
        plain = targeted_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, source, target, 0.0,
        )
        pruned = targeted_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, source, target, 0.0,
            bounds=index.lower_bounds(target),
        )
        assert pruned.distance == plain.distance
        # Goal-direction must beat plain Dijkstra-with-early-exit.
        assert pruned.settled < plain.settled
        assert pruned.settled < rows * cols // 2

    def test_same_node_pair(self):
        csr, entry_risk, latlon = geometric_csr(
            grid_points(2, 2), grid_edges(2, 2)
        )
        result = targeted_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, 1, 1, 0.5,
        )
        assert result.reachable
        assert result.distance == 0.0
        assert result.path == [1]

    def test_disconnected_pair_prunes_to_zero_settles(self):
        # Two 2x2 islands; landmark bounds prove non-reachability
        # before the search starts.
        points = grid_points(2, 2) + [
            (lat, lon + 40.0) for lat, lon in grid_points(2, 2)
        ]
        edges = grid_edges(2, 2) + [
            (i + 4, j + 4) for i, j in grid_edges(2, 2)
        ]
        csr, entry_risk, latlon = geometric_csr(points, edges)
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=4, latlon=latlon
        )
        result = targeted_sweep(
            csr.indptr_list, csr.indices_list, csr.weights_list,
            entry_risk, 0, 6, 0.3, bounds=index.lower_bounds(6),
        )
        assert not result.reachable
        assert result.distance == _INF
        assert result.path == []
        assert result.settled == 0

    def test_negative_alpha_rejected(self):
        csr, entry_risk, _ = geometric_csr(
            grid_points(2, 2), grid_edges(2, 2)
        )
        with pytest.raises(ValueError):
            targeted_sweep(
                csr.indptr_list, csr.indices_list, csr.weights_list,
                entry_risk, 0, 1, -0.1,
            )

    def test_out_of_range_endpoints_rejected(self):
        csr, entry_risk, _ = geometric_csr(
            grid_points(2, 2), grid_edges(2, 2)
        )
        for s, t in ((9, 0), (0, 9), (-1, 0)):
            with pytest.raises(IndexError):
                targeted_sweep(
                    csr.indptr_list, csr.indices_list, csr.weights_list,
                    entry_risk, s, t, 0.0,
                )


class TestLandmarkIndex:
    def test_build_without_coordinates_matches_graph_truth(self):
        csr, entry_risk, _ = geometric_csr(
            grid_points(4, 4), grid_edges(4, 4)
        )
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=4
        )
        assert index.latlon is None
        assert 1 <= index.k <= 4
        assert index.node_count == 16
        # Table rows are exact geographic sweeps from each landmark.
        for row, landmark in zip(index.table, index.landmarks):
            ref = csr_sweep(
                csr.indptr_list, csr.indices_list, csr.weights_list,
                entry_risk, int(landmark), 0.0,
            )
            assert list(row) == ref.dist

    def test_graph_distance_selection_covers_other_components(self):
        # 3-node chain plus a 2-node island: the island must get a
        # landmark so its nodes have finite table rows.
        g = Graph()
        for i in range(5):
            g.add_node(f"n{i}")
        g.add_edge("n0", "n1", 1.0)
        g.add_edge("n1", "n2", 1.0)
        g.add_edge("n3", "n4", 1.0)
        csr = CsrGraph(g)
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=3
        )
        assert any(int(l) in (3, 4) for l in index.landmarks)
        finite_per_node = np.isfinite(index.table).any(axis=0)
        assert finite_per_node.all()

    def test_k_clamped_to_node_count(self):
        csr, _, latlon = geometric_csr(grid_points(1, 2), [(0, 1)])
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=10, latlon=latlon
        )
        assert index.k <= 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LandmarkIndex([0, 1], np.zeros((1, 4)))
        with pytest.raises(ValueError):
            LandmarkIndex([0], np.zeros((1, 4)), latlon=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            LandmarkIndex.build(np.asarray([0]), [], [], k=2)

    def test_lower_bounds_zero_at_target(self):
        csr, _, latlon = geometric_csr(
            grid_points(3, 3), grid_edges(3, 3)
        )
        index = LandmarkIndex.build(
            csr.indptr, csr.indices, csr.weights, k=3, latlon=latlon
        )
        for target in range(9):
            h = index.lower_bounds(target)
            assert h[target] == 0.0
            assert (h >= 0.0).all()
