"""Tests for repro.graph.paths."""

import pytest

from repro.graph.core import Graph
from repro.graph.paths import (
    edge_disjoint_backup,
    k_shortest_paths,
    path_avoiding_edge,
    path_avoiding_nodes,
)
from repro.graph.shortest_path import NoPathError


def ladder() -> Graph:
    """Two parallel corridors a-b-z (cost 3) and a-c-z (cost 4), plus a
    slow direct edge (cost 10)."""
    return Graph.from_edges(
        [
            ("a", "b", 1.0), ("b", "z", 2.0),
            ("a", "c", 2.0), ("c", "z", 2.0),
            ("a", "z", 10.0),
        ]
    )


class TestKShortest:
    def test_first_is_shortest(self):
        paths = k_shortest_paths(ladder(), "a", "z", 1)
        assert paths == [["a", "b", "z"]]

    def test_ordering_by_weight(self):
        g = ladder()
        paths = k_shortest_paths(g, "a", "z", 3)
        weights = [g.path_weight(p) for p in paths]
        assert weights == sorted(weights)
        assert paths[0] == ["a", "b", "z"]
        assert paths[1] == ["a", "c", "z"]
        assert paths[2] == ["a", "z"]

    def test_paths_are_loopless(self):
        for path in k_shortest_paths(ladder(), "a", "z", 3):
            assert len(path) == len(set(path))

    def test_fewer_paths_than_k(self):
        g = Graph.from_edges([("a", "b", 1.0)])
        assert len(k_shortest_paths(g, "a", "b", 5)) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_shortest_paths(ladder(), "a", "z", 0)

    def test_no_path(self):
        g = ladder()
        g.add_node("island")
        with pytest.raises(NoPathError):
            k_shortest_paths(g, "a", "island", 2)


class TestAvoidance:
    def test_avoid_node(self):
        path = path_avoiding_nodes(ladder(), "a", "z", ["b"])
        assert "b" not in path
        assert path == ["a", "c", "z"]

    def test_avoid_endpoints_ignored(self):
        path = path_avoiding_nodes(ladder(), "a", "z", ["a", "z", "b"])
        assert path == ["a", "c", "z"]

    def test_avoid_all_transit(self):
        path = path_avoiding_nodes(ladder(), "a", "z", ["b", "c"])
        assert path == ["a", "z"]

    def test_avoid_edge(self):
        path = path_avoiding_edge(ladder(), "a", "z", ("a", "b"))
        assert path == ["a", "c", "z"]

    def test_avoid_bridge_disconnects(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        with pytest.raises(NoPathError):
            path_avoiding_edge(g, "a", "c", ("b", "c"))


class TestDisjointBackup:
    def test_backup_exists(self):
        backup = edge_disjoint_backup(ladder(), "a", "z")
        assert backup is not None
        assert backup[0] == "a" and backup[-1] == "z"
        assert backup != ["a", "b", "z"]

    def test_backup_edge_disjoint(self):
        g = ladder()
        primary = ["a", "b", "z"]
        backup = edge_disjoint_backup(g, "a", "z")
        primary_edges = {frozenset(e) for e in zip(primary, primary[1:])}
        backup_edges = {frozenset(e) for e in zip(backup, backup[1:])}
        assert not primary_edges & backup_edges

    def test_no_backup_on_tree(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        assert edge_disjoint_backup(g, "a", "c") is None
