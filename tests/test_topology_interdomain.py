"""Tests for repro.topology.interdomain."""

import pytest

from repro.geo.coords import GeoPoint
from repro.topology.interdomain import InterdomainTopology
from repro.topology.network import Network, PoP
from repro.topology.peering import PeeringGraph


def two_isps():
    """Two ISPs sharing Chicago and New York metros."""
    a = Network("A")
    a.add_pop(PoP("A:chi", "Chicago", GeoPoint(41.88, -87.63)))
    a.add_pop(PoP("A:nyc", "New York", GeoPoint(40.71, -74.01)))
    a.add_link("A:chi", "A:nyc")

    b = Network("B")
    b.add_pop(PoP("B:chi", "Chicago", GeoPoint(41.90, -87.65)))
    b.add_pop(PoP("B:den", "Denver", GeoPoint(39.74, -104.98)))
    b.add_link("B:chi", "B:den")
    return a, b


def peered():
    g = PeeringGraph()
    g.add_peering("A", "B")
    return g


class TestConstruction:
    def test_duplicate_names_rejected(self):
        a, _ = two_isps()
        with pytest.raises(ValueError):
            InterdomainTopology([a, a.copy()], peered())

    def test_invalid_colocation_radius(self):
        a, b = two_isps()
        with pytest.raises(ValueError):
            InterdomainTopology([a, b], peered(), co_location_miles=0.0)

    def test_owner_lookup(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        assert topo.owner_of("A:chi") == "A"
        assert topo.owner_of("B:den") == "B"
        with pytest.raises(KeyError):
            topo.owner_of("C:x")

    def test_all_pops(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        assert len(topo.all_pops()) == 4


class TestPeeringEdges:
    def test_colocated_pair_connected(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        edges = topo.peering_edges()
        assert len(edges) == 1
        pops = {edges[0][0], edges[0][1]}
        assert pops == {"A:chi", "B:chi"}

    def test_no_relationship_no_edges(self):
        a, b = two_isps()
        g = PeeringGraph()
        g.add_network("A")
        g.add_network("B")
        topo = InterdomainTopology([a, b], g)
        assert topo.peering_edges() == []

    def test_merged_graph_connects_networks(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        graph = topo.merged_graph()
        from repro.graph.components import is_connected

        assert is_connected(graph)
        assert graph.node_count == 4

    def test_extra_peerings(self):
        a, b = two_isps()
        g = PeeringGraph()
        g.add_network("A")
        g.add_network("B")
        topo = InterdomainTopology([a, b], g)
        merged = topo.merged_graph(extra_peerings=[("A", "B")])
        assert merged.has_edge("A:chi", "B:chi")


class TestCandidates:
    def test_candidate_when_unpeered(self):
        a, b = two_isps()
        g = PeeringGraph()
        g.add_network("A")
        g.add_network("B")
        topo = InterdomainTopology([a, b], g)
        candidates = topo.candidate_peerings("A")
        assert len(candidates) == 1
        assert candidates[0].network_b == "B"
        assert topo.candidate_peer_networks("A") == ["B"]

    def test_no_candidates_when_peered(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        assert topo.candidate_peerings("A") == []

    def test_unknown_network(self):
        a, b = two_isps()
        topo = InterdomainTopology([a, b], peered())
        with pytest.raises(KeyError):
            topo.candidate_peerings("ghost")


class TestCorpusIntegration:
    def test_corpus_merge_is_connected(self):
        from repro.graph.components import is_connected
        from repro.topology.peering import corpus_peering
        from repro.topology.zoo import all_networks

        topo = InterdomainTopology(list(all_networks()), corpus_peering())
        assert is_connected(topo.merged_graph())
