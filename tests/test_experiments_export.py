"""Tests for repro.experiments.export and the CLI format flags."""

import csv
import io
import json

import pytest

from repro.cli import main
from repro.experiments.base import ExperimentResult
from repro.experiments.export import to_csv, to_json, write_result


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo result",
        rows=[
            {"name": "a", "value": 0.5, "count": 3},
            {"name": "b", "value": 0.25, "count": 7, "extra": "x"},
        ],
        notes="a note",
    )


class TestJson:
    def test_round_trip(self, result):
        payload = json.loads(to_json(result))
        assert payload["experiment_id"] == "demo"
        assert payload["notes"] == "a note"
        assert payload["rows"][0]["value"] == 0.5
        assert payload["rows"][1]["extra"] == "x"

    def test_valid_json_for_every_registered_metadata(self, result):
        # Non-primitive values stringify rather than crash.
        result.rows.append({"name": "c", "value": complex(1, 2)})
        payload = json.loads(to_json(result))
        assert isinstance(payload["rows"][2]["value"], str)


class TestCsv:
    def test_header_is_column_union(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert set(rows[0]) == {"name", "value", "count", "extra"}
        assert rows[0]["name"] == "a"
        assert rows[1]["extra"] == "x"

    def test_missing_cells_empty(self, result):
        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert rows[0]["extra"] == ""


class TestWriteResult:
    def test_write_json(self, result, tmp_path):
        path = tmp_path / "out.json"
        write_result(result, str(path), fmt="json")
        assert json.loads(path.read_text())["title"] == "Demo result"

    def test_write_csv(self, result, tmp_path):
        path = tmp_path / "out.csv"
        write_result(result, str(path), fmt="csv")
        assert path.read_text().startswith("name,value,count,extra")

    def test_write_text(self, result, tmp_path):
        path = tmp_path / "out.txt"
        write_result(result, str(path), fmt="text")
        assert "== demo: Demo result ==" in path.read_text()

    def test_unknown_format(self, result, tmp_path):
        with pytest.raises(ValueError):
            write_result(result, str(tmp_path / "x"), fmt="yaml")


class TestCliFormats:
    def test_run_json(self, capsys):
        assert main(["run", "figure6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "figure6"
        assert len(payload["rows"]) == 3

    def test_run_csv(self, capsys):
        assert main(["run", "figure6", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 3

    def test_run_output_file(self, tmp_path, capsys):
        path = tmp_path / "figure6.json"
        assert main(
            ["run", "figure6", "--format", "json", "--output", str(path)]
        ) == 0
        assert json.loads(path.read_text())["experiment_id"] == "figure6"

    def test_output_requires_single_experiment(self, capsys, tmp_path):
        code = main(
            ["run", "all", "--output", str(tmp_path / "x.json")]
        )
        assert code == 2
