"""Cross-cutting invariants over the full synthetic corpus.

These are the "would a downstream user trip over this?" checks: id
hygiene, geometric consistency, and agreement between the different
views of the same data (Network vs Graph vs RiskModel vs census).
"""

import pytest

from repro.geo.distance import haversine_miles
from repro.population.census import synthetic_census
from repro.risk.model import RiskModel
from repro.topology.interdomain import InterdomainTopology
from repro.topology.peering import corpus_peering
from repro.topology.zoo import all_networks, regional_networks, tier1_networks


class TestIdHygiene:
    def test_pop_id_prefix_is_network_name(self):
        for network in all_networks():
            for pop in network.pops():
                assert pop.pop_id.startswith(f"{network.name}:"), pop.pop_id

    def test_pop_city_is_gazetteer_key(self):
        from repro.topology.cities import ALL_CITIES

        keys = {c.key for c in ALL_CITIES}
        for network in all_networks():
            for pop in network.pops():
                assert pop.city in keys, pop.pop_id


class TestGeometry:
    def test_link_lengths_match_pop_geometry(self):
        for network in all_networks():
            for link in network.links():
                expected = haversine_miles(
                    network.pop(link.pop_a).location,
                    network.pop(link.pop_b).location,
                )
                assert link.length_miles == pytest.approx(expected, rel=1e-9)

    def test_graph_view_agrees_with_network(self):
        for network in tier1_networks():
            graph = network.distance_graph()
            assert graph.node_count == network.pop_count
            assert graph.edge_count == network.link_count
            for link in network.links():
                assert graph.weight(link.pop_a, link.pop_b) == pytest.approx(
                    link.length_miles
                )

    def test_no_degenerate_links(self):
        for network in all_networks():
            for link in network.links():
                assert link.length_miles > 0.5, (
                    network.name,
                    link.pop_a,
                    link.pop_b,
                )


class TestPeeringConsistency:
    def test_every_corpus_network_in_peering_graph(self):
        peering = corpus_peering()
        names = set(peering.networks())
        for network in all_networks():
            assert network.name in names

    def test_every_regional_has_level3_or_sprint(self):
        peering = corpus_peering()
        for network in regional_networks():
            peers = set(peering.peers_of(network.name))
            assert peers & {"Level3", "Sprint"}, network.name

    def test_merged_topology_has_peering_edges_for_every_regional(self):
        topology = InterdomainTopology(list(all_networks()), corpus_peering())
        graph = topology.merged_graph()
        for network in regional_networks():
            cross = 0
            for pop_id in network.pop_ids():
                for neighbor in graph.neighbors(pop_id):
                    if topology.owner_of(neighbor) != network.name:
                        cross += 1
            assert cross > 0, f"{network.name} has no egress"


class TestModelConsistency:
    def test_interdomain_model_matches_per_network_models(self):
        networks = list(tier1_networks())[:3]
        topology = InterdomainTopology(networks, corpus_peering())
        merged = RiskModel.for_interdomain(topology)
        for network in networks:
            single = RiskModel.for_network(network)
            for pop_id in network.pop_ids():
                assert merged.share(pop_id) == pytest.approx(
                    single.share(pop_id)
                )
                assert merged.historical_risk(pop_id) == pytest.approx(
                    single.historical_risk(pop_id)
                )

    def test_census_population_plausible(self):
        census = synthetic_census()
        # Synthetic total is in the 10^8 range (relative weights only).
        assert 1e7 < census.total_population < 1e10
