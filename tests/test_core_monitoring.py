"""Tests for repro.core.monitoring."""

import pytest

from repro.core.monitoring import coverage_of, place_monitors
from tests.conftest import build_diamond_model, build_diamond_network


class TestPlacement:
    def test_single_monitor_covers_its_region(
        self, diamond_network, diamond_model
    ):
        placement = place_monitors(
            diamond_network, diamond_model, 1, radius_miles=200.0
        )
        assert len(placement.monitors) == 1
        assert placement.covered_risk > 0.0
        assert placement.covered_risk <= placement.total_risk + 1e-12

    def test_greedy_picks_riskiest_region_first(
        self, diamond_network, diamond_model
    ):
        placement = place_monitors(
            diamond_network, diamond_model, 1, radius_miles=100.0
        )
        # The south PoP carries 50x the risk of everything else.
        assert placement.monitors[0] == "diamond:south"

    def test_coverage_curve_monotone(self, diamond_network, diamond_model):
        placement = place_monitors(
            diamond_network, diamond_model, 4, radius_miles=150.0
        )
        curve = list(placement.coverage_curve)
        assert curve == sorted(curve)
        assert placement.coverage_fraction <= 1.0 + 1e-12

    def test_full_coverage_with_enough_monitors(
        self, diamond_network, diamond_model
    ):
        placement = place_monitors(
            diamond_network, diamond_model, 4, radius_miles=100.0
        )
        assert placement.coverage_fraction == pytest.approx(1.0)

    def test_stops_when_nothing_to_gain(self, diamond_network, diamond_model):
        placement = place_monitors(
            diamond_network, diamond_model, 10, radius_miles=5000.0
        )
        # One monitor sees everything; greedy stops after it.
        assert len(placement.monitors) == 1

    def test_validation(self, diamond_network, diamond_model):
        with pytest.raises(ValueError):
            place_monitors(diamond_network, diamond_model, 0)
        with pytest.raises(ValueError):
            place_monitors(diamond_network, diamond_model, 1, radius_miles=0.0)


class TestCoverageOf:
    def test_explicit_set(self, diamond_network, diamond_model):
        covered = coverage_of(
            diamond_network,
            diamond_model,
            ["diamond:south"],
            radius_miles=100.0,
        )
        assert covered == pytest.approx(
            diamond_model.historical_risk("diamond:south"), rel=1e-9
        )

    def test_unknown_monitor(self, diamond_network, diamond_model):
        with pytest.raises(KeyError):
            coverage_of(diamond_network, diamond_model, ["ghost"])

    def test_greedy_beats_or_ties_naive(self, teliasonera, teliasonera_model):
        """Greedy placement must beat monitoring the first-k PoPs."""
        k = 3
        placement = place_monitors(teliasonera, teliasonera_model, k)
        naive = coverage_of(
            teliasonera, teliasonera_model, teliasonera.pop_ids()[:k]
        )
        assert placement.covered_risk >= naive - 1e-12
