"""Tests for repro.core.interdomain — Section 6.2 bounds."""

import pytest

from repro.core.interdomain import (
    InterdomainRouter,
    regional_pair_population,
)
from repro.geo.coords import GeoPoint
from repro.risk.model import RiskModel
from repro.topology.interdomain import InterdomainTopology
from repro.topology.network import Network, PoP
from repro.topology.peering import PeeringGraph


def build_two_domain_world():
    """Regional R homed to transit T; T spans the country.

    R covers the east; T provides a risky southern transit PoP and a safe
    northern one between R's two metros.
    """
    r = Network("R", tier="regional", states=("NY", "MA"))
    r.add_pop(PoP("R:nyc", "New York", GeoPoint(40.71, -74.01)))
    r.add_pop(PoP("R:bos", "Boston", GeoPoint(42.36, -71.06)))
    r.add_link("R:nyc", "R:bos")

    t = Network("T")
    t.add_pop(PoP("T:nyc", "New York", GeoPoint(40.72, -74.00)))
    t.add_pop(PoP("T:chi", "Chicago", GeoPoint(41.88, -87.63)))
    t.add_pop(PoP("T:atl", "Atlanta", GeoPoint(33.75, -84.39)))
    t.add_pop(PoP("T:den", "Denver", GeoPoint(39.74, -104.98)))
    t.add_link("T:nyc", "T:chi")
    t.add_link("T:nyc", "T:atl")
    t.add_link("T:chi", "T:den")
    t.add_link("T:atl", "T:den")

    peering = PeeringGraph()
    peering.add_peering("R", "T")
    topology = InterdomainTopology([r, t], peering)

    shares = {
        "R:nyc": 0.5, "R:bos": 0.5,
        "T:nyc": 0.4, "T:chi": 0.3, "T:atl": 0.2, "T:den": 0.1,
    }
    oh = {
        "R:nyc": 1e-3, "R:bos": 1e-3,
        "T:nyc": 1e-3, "T:chi": 1e-3, "T:atl": 5e-2, "T:den": 1e-3,
    }
    of = {k: 0.0 for k in shares}
    model = RiskModel(shares, oh, of, gamma_h=1e5, gamma_f=1e3)
    return topology, model


class TestBounds:
    def test_bound_ordering(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        bounds = router.bounds("R:bos", "T:den")
        assert bounds.lower_bound <= bounds.upper_bound + 1e-9
        assert bounds.bound_ratio >= 1.0

    def test_riskroute_crosses_peering(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        bounds = router.bounds("R:bos", "T:den")
        # The path must transit the co-located NYC peering point.
        assert "T:nyc" in bounds.pair.riskroute.path

    def test_risk_averse_interdomain_route(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        route = router.router.risk_route("R:bos", "T:den")
        assert "T:atl" not in route.path  # risky Atlanta avoided
        assert "T:chi" in route.path


class TestRegionalRatios:
    def test_ratios_computed(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        destinations = regional_pair_population(topology)
        assert destinations == ["R:nyc", "R:bos"]
        result = router.regional_ratios("R", ["T:den", "T:chi", "T:atl"])
        assert result.pair_count == 6
        assert result.risk_reduction_ratio >= 0.0

    def test_unknown_network(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        with pytest.raises(KeyError):
            router.regional_ratios("ghost", ["T:den"])

    def test_exact_mode(self):
        topology, model = build_two_domain_world()
        router = InterdomainRouter(topology, model)
        approx = router.regional_ratios("R", ["T:den", "T:atl"])
        exact = router.regional_ratios("R", ["T:den", "T:atl"], exact=True)
        assert approx.risk_reduction_ratio == pytest.approx(
            exact.risk_reduction_ratio, abs=0.05
        )


class TestAggregateLowerBound:
    def test_extra_peering_reduces_bound(self):
        """A new peering can only help (more edges, same metric)."""
        r = Network("R", tier="regional", states=("NY",))
        r.add_pop(PoP("R:nyc", "New York", GeoPoint(40.71, -74.01)))
        r.add_pop(PoP("R:alb", "Albany", GeoPoint(42.65, -73.76)))
        r.add_link("R:nyc", "R:alb")

        t = Network("T")
        t.add_pop(PoP("T:nyc", "New York", GeoPoint(40.72, -74.00)))
        t.add_pop(PoP("T:bos", "Boston", GeoPoint(42.36, -71.06)))
        t.add_link("T:nyc", "T:bos")

        u = Network("U", tier="regional", states=("MA",))
        u.add_pop(PoP("U:bos", "Boston", GeoPoint(42.37, -71.05)))
        u.add_pop(PoP("U:alb", "Albany", GeoPoint(42.66, -73.77)))
        u.add_link("U:bos", "U:alb")

        peering = PeeringGraph()
        peering.add_peering("R", "T")
        peering.add_peering("U", "T")
        topology = InterdomainTopology([r, t, u], peering)

        shares = {
            "R:nyc": 0.6, "R:alb": 0.4,
            "T:nyc": 0.5, "T:bos": 0.5,
            "U:bos": 0.7, "U:alb": 0.3,
        }
        oh = {k: 1e-3 for k in shares}
        of = {k: 0.0 for k in shares}
        model = RiskModel(shares, oh, of)

        destinations = regional_pair_population(topology)
        base = InterdomainRouter(topology, model).aggregate_lower_bound(
            "R", destinations
        )
        with_peer = InterdomainRouter(
            topology, model, extra_peerings=[("R", "U")]
        ).aggregate_lower_bound("R", destinations)
        assert with_peer <= base + 1e-9
        assert with_peer < base  # the Albany co-location is a shortcut
