"""Tests for repro.geo.distance."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.geo.distance import (
    EARTH_RADIUS_MILES,
    destination_point,
    distances_to_point,
    haversine_km,
    haversine_miles,
    interpolate_great_circle,
    pairwise_distance_matrix,
    path_length_miles,
)

NYC = GeoPoint(40.71, -74.01)
LA = GeoPoint(34.05, -118.24)
CHICAGO = GeoPoint(41.88, -87.63)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_miles(NYC, NYC) == 0.0

    def test_nyc_la_known_distance(self):
        # Great-circle NYC-LA is ~2450 statute miles.
        assert haversine_miles(NYC, LA) == pytest.approx(2450.0, rel=0.02)

    def test_symmetry(self):
        assert haversine_miles(NYC, LA) == pytest.approx(
            haversine_miles(LA, NYC)
        )

    def test_triangle_inequality(self):
        direct = haversine_miles(NYC, LA)
        via = haversine_miles(NYC, CHICAGO) + haversine_miles(CHICAGO, LA)
        assert direct <= via + 1e-9

    def test_km_conversion(self):
        miles = haversine_miles(NYC, LA)
        km = haversine_km(NYC, LA)
        assert km == pytest.approx(miles * 1.609344, rel=1e-3)

    def test_antipodal_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_miles(a, b) == pytest.approx(
            np.pi * EARTH_RADIUS_MILES, rel=1e-6
        )


class TestPathLength:
    def test_empty_path(self):
        assert path_length_miles([]) == 0.0

    def test_single_point(self):
        assert path_length_miles([NYC]) == 0.0

    def test_two_hops_additive(self):
        total = path_length_miles([NYC, CHICAGO, LA])
        expected = haversine_miles(NYC, CHICAGO) + haversine_miles(CHICAGO, LA)
        assert total == pytest.approx(expected)


class TestMatrixForms:
    def test_pairwise_matches_scalar(self):
        points = [NYC, LA, CHICAGO]
        matrix = pairwise_distance_matrix(points)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(
                    haversine_miles(a, b), abs=1e-6
                )

    def test_pairwise_empty(self):
        assert pairwise_distance_matrix([]).shape == (0, 0)

    def test_pairwise_diagonal_zero(self):
        matrix = pairwise_distance_matrix([NYC, LA])
        assert matrix[0, 0] == 0.0
        assert matrix[1, 1] == 0.0

    def test_distances_to_point(self):
        out = distances_to_point([NYC, LA], CHICAGO)
        assert out[0] == pytest.approx(haversine_miles(NYC, CHICAGO))
        assert out[1] == pytest.approx(haversine_miles(LA, CHICAGO))

    def test_distances_to_point_empty(self):
        assert distances_to_point([], NYC).shape == (0,)


class TestInterpolation:
    def test_endpoints(self):
        assert interpolate_great_circle(NYC, LA, 0.0) == NYC
        mid = interpolate_great_circle(NYC, LA, 1.0)
        assert haversine_miles(mid, LA) < 1e-6

    def test_midpoint_equidistant(self):
        mid = interpolate_great_circle(NYC, LA, 0.5)
        d1 = haversine_miles(NYC, mid)
        d2 = haversine_miles(mid, LA)
        assert d1 == pytest.approx(d2, rel=1e-9)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            interpolate_great_circle(NYC, LA, 1.5)

    def test_same_point(self):
        assert interpolate_great_circle(NYC, NYC, 0.7) == NYC

    def test_antipodal_rejected(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        with pytest.raises(ValueError):
            interpolate_great_circle(a, b, 0.5)


class TestDestination:
    def test_due_north(self):
        out = destination_point(GeoPoint(40.0, -100.0), 0.0, 69.05)
        assert out.lat == pytest.approx(41.0, abs=0.02)
        assert out.lon == pytest.approx(-100.0, abs=0.02)

    def test_round_trip_distance(self):
        out = destination_point(NYC, 123.0, 500.0)
        assert haversine_miles(NYC, out) == pytest.approx(500.0, rel=1e-6)

    def test_zero_distance(self):
        out = destination_point(NYC, 45.0, 0.0)
        assert haversine_miles(NYC, out) < 1e-9

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            destination_point(NYC, 0.0, -1.0)
