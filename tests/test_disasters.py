"""Tests for repro.disasters (events, generators, catalogs)."""

import pytest

from repro.disasters.catalog import (
    PAPER_BANDWIDTHS,
    PRETRAINED_BANDWIDTHS,
    catalog_of,
    event_kde,
    full_catalog,
)
from repro.disasters.events import (
    PAPER_EVENT_COUNTS,
    DisasterCatalog,
    DisasterEvent,
    EventType,
)
from repro.disasters.fema import FEMA_TOTAL_DECLARATIONS, fema_catalog
from repro.disasters.generators import EVENT_MODELS, generate_events
from repro.disasters.noaa import noaa_catalog
from repro.geo.coords import CONTINENTAL_US, BoundingBox, GeoPoint
from repro.geo.regions import CENTRAL_PLAINS, GULF_COAST, WEST_COAST


class TestEvents:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            DisasterEvent("typhoon", GeoPoint(30.0, -90.0), 2000)

    def test_implausible_year_rejected(self):
        with pytest.raises(ValueError):
            DisasterEvent(EventType.FEMA_STORM, GeoPoint(30.0, -90.0), 1492)

    def test_catalog_filters(self):
        events = [
            DisasterEvent(EventType.FEMA_STORM, GeoPoint(35.0, -95.0), 1980),
            DisasterEvent(EventType.FEMA_TORNADO, GeoPoint(36.0, -96.0), 1990),
            DisasterEvent(EventType.FEMA_STORM, GeoPoint(45.0, -70.0), 2000),
        ]
        catalog = DisasterCatalog(events)
        assert len(catalog.of_type(EventType.FEMA_STORM)) == 2
        assert len(catalog.between_years(1985, 1995)) == 1
        box = BoundingBox(30.0, -100.0, 40.0, -90.0)
        assert len(catalog.within(box)) == 2

    def test_of_type_unknown(self):
        with pytest.raises(ValueError):
            DisasterCatalog([]).of_type("typhoon")

    def test_between_years_inverted(self):
        with pytest.raises(ValueError):
            DisasterCatalog([]).between_years(2000, 1990)

    def test_within_bad_type(self):
        with pytest.raises(TypeError):
            DisasterCatalog([]).within("texas")

    def test_counts_by_type(self):
        events = [
            DisasterEvent(EventType.FEMA_STORM, GeoPoint(35.0, -95.0), 1980),
            DisasterEvent(EventType.FEMA_STORM, GeoPoint(36.0, -96.0), 1981),
        ]
        assert DisasterCatalog(events).counts_by_type() == {
            EventType.FEMA_STORM: 2
        }

    def test_merged_with(self):
        a = DisasterCatalog(
            [DisasterEvent(EventType.FEMA_STORM, GeoPoint(35.0, -95.0), 1980)]
        )
        b = DisasterCatalog(
            [DisasterEvent(EventType.NOAA_WIND, GeoPoint(36.0, -96.0), 1981)]
        )
        assert len(a.merged_with(b)) == 2


class TestGenerators:
    def test_models_for_all_classes(self):
        assert set(EVENT_MODELS) == set(EventType.ALL)

    def test_counts_exact(self):
        catalog = generate_events(EventType.FEMA_TORNADO, 100, seed=1)
        assert len(catalog) == 100

    def test_deterministic(self):
        a = generate_events(EventType.FEMA_STORM, 50, seed=9)
        b = generate_events(EventType.FEMA_STORM, 50, seed=9)
        assert a.locations() == b.locations()

    def test_seed_changes_output(self):
        a = generate_events(EventType.FEMA_STORM, 50, seed=1)
        b = generate_events(EventType.FEMA_STORM, 50, seed=2)
        assert a.locations() != b.locations()

    def test_events_inside_us(self):
        catalog = generate_events(EventType.NOAA_WIND, 300, seed=3)
        assert all(CONTINENTAL_US.contains(p) for p in catalog.locations())

    def test_years_in_range(self):
        catalog = generate_events(
            EventType.FEMA_HURRICANE, 100, seed=4, year_range=(1980, 1990)
        )
        assert all(1980 <= e.year <= 1990 for e in catalog)

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            generate_events("typhoon", 10, seed=0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            generate_events(EventType.NOAA_WIND, -5, seed=0)

    def test_hurricanes_coastal(self):
        catalog = generate_events(EventType.FEMA_HURRICANE, 500, seed=5)
        coastal = sum(
            1
            for p in catalog.locations()
            if GULF_COAST.contains(p)
            or p.lon > -83.0  # Atlantic seaboard
        )
        assert coastal / 500 > 0.5

    def test_tornadoes_in_plains(self):
        catalog = generate_events(EventType.FEMA_TORNADO, 500, seed=6)
        plains = sum(
            1 for p in catalog.locations() if CENTRAL_PLAINS.contains(p)
        )
        assert plains / 500 > 0.4

    def test_earthquakes_western(self):
        catalog = generate_events(EventType.NOAA_EARTHQUAKE, 500, seed=7)
        west = sum(1 for p in catalog.locations() if p.lon < -100.0)
        assert west / 500 > 0.6


class TestCorpusCatalogs:
    def test_paper_counts(self):
        for event_type, count in PAPER_EVENT_COUNTS.items():
            assert len(catalog_of(event_type)) == count

    def test_fema_total(self):
        assert len(fema_catalog()) == FEMA_TOTAL_DECLARATIONS

    def test_noaa_total(self):
        assert len(noaa_catalog()) == (
            PAPER_EVENT_COUNTS[EventType.NOAA_WIND]
            + PAPER_EVENT_COUNTS[EventType.NOAA_EARTHQUAKE]
        )

    def test_full_catalog_total(self):
        assert len(full_catalog()) == sum(PAPER_EVENT_COUNTS.values())

    def test_unknown_catalog(self):
        with pytest.raises(ValueError):
            catalog_of("typhoon")


class TestBandwidths:
    def test_pretrained_cover_all_classes(self):
        assert set(PRETRAINED_BANDWIDTHS) == set(EventType.ALL)
        assert set(PAPER_BANDWIDTHS) == set(EventType.ALL)

    def test_pretrained_ordering_matches_paper(self):
        """The reproduced Table 1 ordering: wind < storm < tornado <
        hurricane < earthquake."""
        b = PRETRAINED_BANDWIDTHS
        assert (
            b[EventType.NOAA_WIND]
            < b[EventType.FEMA_STORM]
            < b[EventType.FEMA_TORNADO]
            < b[EventType.FEMA_HURRICANE]
            < b[EventType.NOAA_EARTHQUAKE]
        )

    def test_event_kde_uses_pretrained_default(self):
        kde = event_kde(EventType.FEMA_TORNADO)
        assert kde.bandwidth_miles == PRETRAINED_BANDWIDTHS[EventType.FEMA_TORNADO]

    def test_event_kde_override(self):
        kde = event_kde(EventType.FEMA_TORNADO, 123.0)
        assert kde.bandwidth_miles == 123.0

    def test_kde_peaks_in_expected_regions(self):
        quake = event_kde(EventType.NOAA_EARTHQUAKE)
        west = quake.density(GeoPoint(36.0, -118.0))
        east = quake.density(GeoPoint(40.0, -75.0))
        assert west > 5 * east
