"""Shared-memory engine state: export/attach parity and leak guards.

The segments :class:`~repro.engine.shm.SharedEngineState` creates live
in ``/dev/shm`` and outlive their creator — a parent that dies without
:meth:`close` (unhandled exception, ``sys.exit`` mid-serve, SIGTERM
handler that forgets teardown) used to leak pages sized like the whole
topology until reboot, and a respawned daemon then raced the stale
names.  The finalizer tests here pin the unlink guard from every exit
path:

* normal garbage collection without ``close()``;
* interpreter exit without ``close()`` — exercised in a real
  subprocess that ``sys.exit(3)``-s while holding live segments;
* the clean path stays single-unlink (``close()`` detaches the
  finalizer), and spawning *after* a dirty exit does not collide.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.engine.shm import SharedEngineState, attach_engine
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _export() -> SharedEngineState:
    session = RoutingSession(build_diamond_network(), build_diamond_model())
    return SharedEngineState.export(session.engine)


def _segment_names(state: SharedEngineState):
    return [name for name, _, _ in state.manifest.segments.values()]


def _assert_all_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestExportAttach:
    def test_attach_sees_the_same_engine(self):
        session = RoutingSession(
            build_diamond_network(), build_diamond_model()
        )
        with SharedEngineState.export(session.engine) as state:
            manifest = state.manifest
            assert manifest.risk_fingerprint == (
                session.engine.risk_fingerprint
            )
            clear_engine_registry()
            child = attach_engine(manifest, build_diamond_model())
            assert child.risk_fingerprint == manifest.risk_fingerprint
            np.testing.assert_array_equal(
                child._csr.indptr, session.engine._csr.indptr
            )


class TestUnlinkGuard:
    def test_close_unlinks_and_is_idempotent(self):
        state = _export()
        names = _segment_names(state)
        # Live while open …
        shared_memory.SharedMemory(name=names[0]).close()
        state.close()
        _assert_all_unlinked(names)
        state.close()  # idempotent: the second pass has nothing to do

    def test_garbage_collection_unlinks_without_close(self):
        state = _export()
        names = _segment_names(state)
        del state
        gc.collect()
        _assert_all_unlinked(names)

    def test_dirty_parent_exit_unlinks_segments(self):
        """A parent that sys.exit()s mid-serve must not leak segments:
        the finalizer runs at interpreter exit, and a fresh export
        afterwards comes up clean (no stale-name collision, no
        resource-tracker leak warnings)."""
        script = (
            "import json, sys\n"
            "from repro import RoutingSession\n"
            "from repro.engine.shm import SharedEngineState\n"
            "from tests.conftest import (\n"
            "    build_diamond_model, build_diamond_network,\n"
            ")\n"
            "session = RoutingSession(\n"
            "    build_diamond_network(), build_diamond_model()\n"
            ")\n"
            "state = SharedEngineState.export(session.engine)\n"
            "names = [n for n, _, _ in state.manifest.segments.values()]\n"
            "print(json.dumps(names), flush=True)\n"
            "sys.exit(3)  # dirty: no close(), segments still open\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
        )
        assert result.returncode == 3, result.stderr
        names = json.loads(result.stdout.strip().splitlines()[-1])
        assert names
        _assert_all_unlinked(names)
        # The unlink path unregisters from the resource tracker too:
        # no "leaked shared_memory" noise on the way down.
        assert "leaked" not in result.stderr, result.stderr

        # And the next daemon generation starts clean.
        with _export() as fresh:
            for name in _segment_names(fresh):
                shared_memory.SharedMemory(name=name).close()
