"""Shared-risk-group inference: corridor grids, rasterised geodesics.

Pins the geometry (cell sizing, geodesic rasterisation), the grouping
contract (min_links filter, dense ordered ids), and the risk-weighted
activation sampling the Monte Carlo driver draws from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.coords import CONTINENTAL_US, GeoPoint
from repro.scenario import SrgIndex, corridor_grid, infer_srgs
from repro.scenario.srg import link_corridor_cells
from tests.conftest import build_diamond_model, build_diamond_network


class TestCorridorGrid:
    def test_cells_are_about_corridor_sized(self):
        grid = corridor_grid(50.0)
        lat_miles = CONTINENTAL_US.height_degrees * 69.0 / grid.n_lat
        assert 40.0 <= lat_miles <= 60.0

    def test_coarser_corridor_fewer_cells(self):
        fine = corridor_grid(25.0)
        coarse = corridor_grid(200.0)
        assert fine.n_lat > coarse.n_lat
        assert fine.n_lon > coarse.n_lon

    def test_non_positive_corridor_rejected(self):
        with pytest.raises(ValueError):
            corridor_grid(0.0)


class TestLinkCorridorCells:
    def test_long_link_crosses_many_cells(self):
        grid = corridor_grid(50.0)
        cells = link_corridor_cells(
            grid, GeoPoint(39.0, -100.0), GeoPoint(39.0, -90.0), 25.0
        )
        # ~535 miles of geodesic through ~50-mile cells.
        assert len(cells) >= 8
        for cell in cells:
            assert 0 <= cell[0] < grid.n_lat
            assert 0 <= cell[1] < grid.n_lon

    def test_degenerate_link_occupies_one_cell(self):
        grid = corridor_grid(50.0)
        point = GeoPoint(39.0, -100.0)
        assert len(link_corridor_cells(grid, point, point, 25.0)) == 1

    def test_out_of_box_samples_ignored(self):
        grid = corridor_grid(50.0)
        cells = link_corridor_cells(
            grid, GeoPoint(60.0, -100.0), GeoPoint(61.0, -100.0), 10.0
        )
        assert cells == set()

    def test_non_positive_step_rejected(self):
        grid = corridor_grid(50.0)
        with pytest.raises(ValueError):
            link_corridor_cells(
                grid, GeoPoint(39.0, -100.0), GeoPoint(39.0, -90.0), 0.0
            )


class TestInferSrgs:
    def test_diamond_groups_share_corridors(self, diamond_network):
        srgs = infer_srgs(build_diamond_network())
        assert len(srgs) > 0
        for group in srgs.groups:
            assert group.size >= 2
            for pair in group.links:
                assert pair == tuple(sorted(pair))
        # Dense, cell-ordered ids.
        assert [g.group_id for g in srgs.groups] == list(range(len(srgs)))
        assert [g.cell for g in srgs.groups] == sorted(
            g.cell for g in srgs.groups
        )

    def test_risk_comes_from_model(self, diamond_network):
        unweighted = infer_srgs(diamond_network)
        weighted = infer_srgs(diamond_network, build_diamond_model())
        assert all(g.risk == 1.0 for g in unweighted.groups)
        assert all(g.risk > 0 for g in weighted.groups)
        assert any(g.risk != 1.0 for g in weighted.groups)

    def test_group_at_locates_corridors(self, diamond_network):
        srgs = infer_srgs(diamond_network)
        west = srgs.group_at(GeoPoint(39.0, -100.0))
        assert west is not None
        assert "diamond:west" in west.pops
        assert srgs.group_at(GeoPoint(60.0, -100.0)) is None

    def test_min_links_filters_groups(self, diamond_network):
        all_groups = infer_srgs(diamond_network, min_links=1)
        shared_only = infer_srgs(diamond_network, min_links=2)
        assert len(all_groups) > len(shared_only)
        with pytest.raises(ValueError):
            infer_srgs(diamond_network, min_links=0)

    def test_activation_weights_normalised(self, diamond_network):
        srgs = infer_srgs(diamond_network, build_diamond_model())
        weights = srgs.activation_weights()
        assert len(weights) == len(srgs)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_empty_index_yields_empty_weights(self):
        srgs = SrgIndex(corridor_grid(50.0), [])
        assert len(srgs) == 0
        assert srgs.activation_weights().shape == (0,)
        assert srgs.group_at(GeoPoint(39.0, -100.0)) is None

    def test_uniform_fallback_for_zero_risk(self, diamond_network):
        srgs = infer_srgs(diamond_network)
        zeroed = SrgIndex(
            srgs.grid,
            [
                type(g)(
                    group_id=g.group_id, cell=g.cell, links=g.links,
                    pops=g.pops, risk=0.0,
                )
                for g in srgs.groups
            ],
        )
        weights = zeroed.activation_weights()
        assert np.allclose(weights, 1.0 / len(zeroed))
