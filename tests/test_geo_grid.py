"""Tests for repro.geo.grid."""

import numpy as np
import pytest

from repro.geo.coords import BoundingBox, GeoPoint
from repro.geo.grid import GeoGrid, GridField

BOX = BoundingBox(0.0, 0.0, 10.0, 20.0)


class TestGeoGrid:
    def test_shape(self):
        grid = GeoGrid(BOX, 5, 10)
        assert grid.shape == (5, 10)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GeoGrid(BOX, 0, 10)

    def test_cell_sizes(self):
        grid = GeoGrid(BOX, 5, 10)
        assert grid.cell_height_degrees == pytest.approx(2.0)
        assert grid.cell_width_degrees == pytest.approx(2.0)

    def test_cell_center_first(self):
        grid = GeoGrid(BOX, 5, 10)
        assert grid.cell_center(0, 0) == GeoPoint(1.0, 1.0)

    def test_cell_center_out_of_range(self):
        grid = GeoGrid(BOX, 5, 10)
        with pytest.raises(IndexError):
            grid.cell_center(5, 0)

    def test_cell_of_round_trip(self):
        grid = GeoGrid(BOX, 5, 10)
        for i in range(5):
            for j in range(10):
                center = grid.cell_center(i, j)
                assert grid.cell_of(center) == (i, j)

    def test_cell_of_edge_points(self):
        grid = GeoGrid(BOX, 5, 10)
        assert grid.cell_of(GeoPoint(10.0, 20.0)) == (4, 9)
        assert grid.cell_of(GeoPoint(0.0, 0.0)) == (0, 0)

    def test_cell_of_outside_raises(self):
        grid = GeoGrid(BOX, 5, 10)
        with pytest.raises(ValueError):
            grid.cell_of(GeoPoint(-1.0, 5.0))

    def test_centers_count(self):
        grid = GeoGrid(BOX, 3, 4)
        assert len(grid.centers()) == 12

    def test_centers_array_matches_centers(self):
        grid = GeoGrid(BOX, 3, 4)
        arr = grid.centers_array()
        pts = grid.centers()
        assert arr.shape == (12, 2)
        for row, p in zip(arr, pts):
            assert row[0] == pytest.approx(p.lat)
            assert row[1] == pytest.approx(p.lon)

    def test_iteration_yields_all_cells(self):
        grid = GeoGrid(BOX, 2, 3)
        cells = list(grid)
        assert len(cells) == 6
        assert cells[0][:2] == (0, 0)
        assert cells[-1][:2] == (1, 2)


class TestGridField:
    def make_field(self):
        grid = GeoGrid(BOX, 2, 2)
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        return GridField(grid, values)

    def test_shape_mismatch_rejected(self):
        grid = GeoGrid(BOX, 2, 2)
        with pytest.raises(ValueError):
            GridField(grid, np.zeros((3, 2)))

    def test_value_at(self):
        field = self.make_field()
        assert field.value_at(GeoPoint(7.5, 15.0)) == 4.0

    def test_peak(self):
        field = self.make_field()
        location, value = field.peak()
        assert value == 4.0
        assert location == GeoPoint(7.5, 15.0)

    def test_total_mass(self):
        assert self.make_field().total_mass() == 10.0

    def test_normalized_sums_to_one(self):
        norm = self.make_field().normalized()
        assert norm.total_mass() == pytest.approx(1.0)

    def test_normalized_zero_mass_rejected(self):
        grid = GeoGrid(BOX, 2, 2)
        field = GridField(grid, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            field.normalized()

    def test_mass_in_box(self):
        field = self.make_field()
        south = BoundingBox(0.0, 0.0, 5.0, 20.0)
        assert field.mass_in_box(south) == 3.0
