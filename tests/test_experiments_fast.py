"""Fast experiment-level tests: registry, formatting, and the cheap
experiments end to end (the heavy sweeps run under benchmarks/)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    get_experiment,
    registered_experiments,
)
from repro.experiments.base import register


class TestRegistry:
    def test_all_thirteen_registered(self):
        ids = registered_experiments()
        expected = {
            "table1", "table2", "table3",
            "figure4", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10", "figure11", "figure12", "figure13",
        }
        assert set(ids) == expected

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("table1")(lambda: None)


class TestFormatting:
    def test_format_text(self):
        result = ExperimentResult(
            "x", "demo", [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}], notes="n"
        )
        text = result.format_text()
        assert "== x: demo ==" in text
        assert "0.5000" in text
        assert text.endswith("-- n")

    def test_empty_rows(self):
        result = ExperimentResult("x", "demo", [])
        assert "(no rows)" in result.format_text()

    def test_column_union(self):
        result = ExperimentResult("x", "demo", [{"a": 1}, {"b": 2}])
        assert result.column_names() == ["a", "b"]


class TestCheapExperiments:
    def test_figure5(self):
        result = get_experiment("figure5")()
        assert len(result.rows) == 3
        # The storm moves north over the three panels.
        lats = [row["center_lat"] for row in result.rows]
        assert lats == sorted(lats)
        # Coverage grows as it nears the northeast corridor.
        assert (
            result.rows[-1]["tier1_pops_tropical_zone"]
            > result.rows[0]["tier1_pops_tropical_zone"]
        )

    def test_figure6(self):
        result = get_experiment("figure6")()
        counts = {
            row["storm"]: row["tier1_pops_hurricane"] for row in result.rows
        }
        assert counts["Katrina"] < counts["Irene"] <= counts["Sandy"]

    def test_figure7(self):
        result = get_experiment("figure7")()
        assert len(result.rows) == 2
        small, large = result.rows
        assert large["riskroute_miles"] >= small["riskroute_miles"]
        for row in result.rows:
            assert row["riskroute_bit_risk"] <= row["shortest_bit_risk"] + 1e-9
            assert row["riskroute_miles"] >= row["shortest_miles"] - 1e-9
