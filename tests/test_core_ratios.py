"""Tests for repro.core.ratios — Equations 5 and 6."""

import pytest

from repro.core.ratios import RatioResult, intradomain_ratios, ratios_over_pairs
from repro.core.riskroute import RiskRouter
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture
def router(diamond_network, diamond_model):
    return RiskRouter(diamond_network.distance_graph(), diamond_model)


class TestRatioResult:
    def test_negative_pairs_rejected(self):
        with pytest.raises(ValueError):
            RatioResult(0.1, 0.1, -1)


class TestRatiosOverPairs:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ratios_over_pairs([])

    def test_identity_routes_zero_ratios(self, router):
        """When RiskRoute picks the same paths, rr = dr = 0."""
        from repro.core.riskroute import PairRoutes

        base = router.shortest_path("diamond:west", "diamond:north")
        pair = PairRoutes(shortest=base, riskroute=base)
        result = ratios_over_pairs([pair])
        assert result.risk_reduction_ratio == pytest.approx(0.0)
        assert result.distance_increase_ratio == pytest.approx(0.0)
        assert result.pair_count == 1

    def test_aggregation(self, router):
        pairs = [
            router.route_pair("diamond:west", "diamond:east"),
            router.route_pair("diamond:north", "diamond:south"),
        ]
        result = ratios_over_pairs(pairs)
        assert result.pair_count == 2
        mean_risk = sum(p.risk_ratio for p in pairs) / 2
        assert result.risk_reduction_ratio == pytest.approx(1 - mean_risk)


class TestIntradomainRatios:
    def test_all_pairs(self, router):
        result = intradomain_ratios(router)
        assert result.pair_count == 12  # 4 * 3 ordered pairs
        assert 0.0 <= result.risk_reduction_ratio < 1.0
        assert result.distance_increase_ratio >= 0.0

    def test_riskroute_reduces_risk_on_diamond(self, router):
        result = intradomain_ratios(router)
        assert result.risk_reduction_ratio > 0.0

    def test_restricted_sources(self, router):
        result = intradomain_ratios(router, sources=["diamond:west"])
        assert result.pair_count == 3

    def test_restricted_targets(self, router):
        result = intradomain_ratios(
            router, sources=["diamond:west"], targets=["diamond:east"]
        )
        assert result.pair_count == 1

    def test_exact_vs_approx_consistent(self, router):
        exact = intradomain_ratios(router, exact=True)
        approx = intradomain_ratios(router, exact=False)
        assert approx.risk_reduction_ratio == pytest.approx(
            exact.risk_reduction_ratio, abs=0.05
        )

    def test_gamma_monotonicity(self, diamond_network):
        """Larger gamma_h must not reduce rr or dr (more risk-averse)."""
        graph = diamond_network.distance_graph()
        results = []
        for gamma in (0.0, 1e5, 1e6):
            model = build_diamond_model(gamma_h=gamma)
            results.append(intradomain_ratios(RiskRouter(graph, model)))
        assert results[0].risk_reduction_ratio == pytest.approx(0.0)
        assert (
            results[0].risk_reduction_ratio
            <= results[1].risk_reduction_ratio
            <= results[2].risk_reduction_ratio + 1e-9
        )
        assert (
            results[0].distance_increase_ratio
            <= results[2].distance_increase_ratio + 1e-9
        )

    def test_corpus_network(self, teliasonera, teliasonera_model):
        router = RiskRouter(teliasonera.distance_graph(), teliasonera_model)
        result = intradomain_ratios(router)
        assert result.pair_count == 15 * 14
        assert 0.0 < result.risk_reduction_ratio < 0.5
        assert 0.0 <= result.distance_increase_ratio < 0.5
