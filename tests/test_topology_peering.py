"""Tests for repro.topology.peering."""

import pytest

from repro.topology.peering import (
    CORPUS_TRANSIT,
    PeeringGraph,
    corpus_peering,
    parse_caida_as_rel,
)


class TestPeeringGraph:
    def test_add_and_query(self):
        g = PeeringGraph()
        g.add_peering("A", "B")
        assert g.are_peers("A", "B")
        assert g.are_peers("B", "A")
        assert not g.are_peers("A", "C")

    def test_self_peering_rejected(self):
        g = PeeringGraph()
        with pytest.raises(ValueError):
            g.add_peering("A", "A")

    def test_empty_name_rejected(self):
        g = PeeringGraph()
        with pytest.raises(ValueError):
            g.add_network("")

    def test_idempotent(self):
        g = PeeringGraph()
        g.add_peering("A", "B")
        g.add_peering("B", "A")
        assert g.peer_count("A") == 1

    def test_peers_sorted(self):
        g = PeeringGraph()
        g.add_peering("A", "Z")
        g.add_peering("A", "B")
        assert g.peers_of("A") == ["B", "Z"]

    def test_unknown_network(self):
        g = PeeringGraph()
        with pytest.raises(KeyError):
            g.peers_of("ghost")
        with pytest.raises(KeyError):
            g.peer_count("ghost")

    def test_edges_unique_and_sorted(self):
        g = PeeringGraph()
        g.add_peering("B", "A")
        g.add_peering("C", "A")
        assert g.edges() == [("A", "B"), ("A", "C")]

    def test_copy_independent(self):
        g = PeeringGraph()
        g.add_peering("A", "B")
        clone = g.copy()
        clone.add_peering("A", "C")
        assert not g.are_peers("A", "C")


class TestCorpusPeering:
    def test_tier1_full_mesh(self):
        g = corpus_peering()
        tier1 = ["Level3", "ATT", "Deutsche", "NTT", "Sprint", "Tinet", "Teliasonera"]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert g.are_peers(a, b), (a, b)

    def test_regional_transit_recorded(self):
        g = corpus_peering()
        for regional, providers in CORPUS_TRANSIT.items():
            for provider in providers:
                assert g.are_peers(regional, provider)

    def test_23_networks(self):
        assert len(corpus_peering().networks()) == 23

    def test_att_and_tinet_underrepresented(self):
        # The Figure 11 setup requires AT&T and Tinet to be rare transit
        # providers so they remain available as new peers.
        g = corpus_peering()
        att_regionals = [
            r for r in CORPUS_TRANSIT if g.are_peers(r, "ATT")
        ]
        tinet_regionals = [
            r for r in CORPUS_TRANSIT if g.are_peers(r, "Tinet")
        ]
        assert not att_regionals
        assert not tinet_regionals


class TestCaidaParser:
    def test_basic_parse(self):
        lines = [
            "# comment",
            "1|2|0",
            "3|1|-1",
            "",
        ]
        g = parse_caida_as_rel(lines)
        assert g.are_peers("AS1", "AS2")
        assert g.are_peers("AS1", "AS3")

    def test_name_mapping(self):
        g = parse_caida_as_rel(["3356|7018|0"], names={3356: "Level3", 7018: "ATT"})
        assert g.are_peers("Level3", "ATT")

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            parse_caida_as_rel(["1|2"])

    def test_non_numeric(self):
        with pytest.raises(ValueError):
            parse_caida_as_rel(["a|b|0"])

    def test_unknown_relationship_code(self):
        with pytest.raises(ValueError):
            parse_caida_as_rel(["1|2|7"])
