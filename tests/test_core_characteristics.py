"""Tests for repro.core.characteristics — Table 3 machinery."""

import pytest

from repro.core.characteristics import (
    CHARACTERISTIC_NAMES,
    NetworkCharacteristics,
    characteristic_r_squared,
    characteristics_of,
)
from repro.topology.peering import PeeringGraph
from tests.conftest import build_diamond_model, build_diamond_network


def make_features(count=5):
    out = []
    for i in range(count):
        out.append(
            NetworkCharacteristics(
                network=f"n{i}",
                geographic_footprint=100.0 * (i + 1),
                average_pop_risk=0.01,
                average_outdegree=2.5,
                pop_count=10 + i,
                link_count=12 + i,
                peer_count=2,
            )
        )
    return out


class TestCharacteristics:
    def test_value_lookup(self):
        features = make_features(1)[0]
        assert features.value("geographic_footprint") == 100.0
        assert features.value("pop_count") == 10.0

    def test_unknown_characteristic(self):
        with pytest.raises(KeyError):
            make_features(1)[0].value("coolness")

    def test_characteristics_of(self, diamond_network, diamond_model):
        peering = PeeringGraph()
        peering.add_peering("diamond", "other")
        features = characteristics_of(diamond_network, diamond_model, peering)
        assert features.network == "diamond"
        assert features.pop_count == 4
        assert features.link_count == 4
        assert features.average_outdegree == pytest.approx(2.0)
        assert features.peer_count == 1
        assert features.geographic_footprint > 0
        assert features.average_pop_risk > 0


class TestRSquared:
    def test_perfect_linear_outcome(self):
        features = make_features()
        outcomes = {f.network: f.geographic_footprint * 0.001 for f in features}
        r2 = characteristic_r_squared(features, outcomes)
        assert r2["geographic_footprint"] == pytest.approx(1.0)
        # pop_count is also linear in i here, so it correlates too; the
        # constant characteristics must not.
        assert r2["average_outdegree"] == 0.0
        assert r2["peer_count"] == 0.0

    def test_all_characteristics_reported(self):
        features = make_features()
        outcomes = {f.network: 0.1 for f in features}
        r2 = characteristic_r_squared(features, outcomes)
        assert set(r2) == set(CHARACTERISTIC_NAMES)

    def test_missing_networks_skipped(self):
        features = make_features()
        outcomes = {"n0": 0.1, "n1": 0.2, "n2": 0.3}
        r2 = characteristic_r_squared(features, outcomes)
        assert set(r2) == set(CHARACTERISTIC_NAMES)

    def test_too_few_networks(self):
        features = make_features(2)
        outcomes = {f.network: 0.1 for f in features}
        with pytest.raises(ValueError):
            characteristic_r_squared(features, outcomes)
