"""Tests for repro.geo.coords."""

import math

import pytest

from repro.geo.coords import (
    CONTINENTAL_US,
    BoundingBox,
    GeoPoint,
    validate_latitude,
    validate_longitude,
)


class TestValidation:
    def test_latitude_in_range(self):
        assert validate_latitude(45.0) == 45.0

    def test_latitude_boundaries(self):
        assert validate_latitude(90.0) == 90.0
        assert validate_latitude(-90.0) == -90.0

    def test_latitude_out_of_range(self):
        with pytest.raises(ValueError):
            validate_latitude(90.01)
        with pytest.raises(ValueError):
            validate_latitude(-91.0)

    def test_latitude_nan_rejected(self):
        with pytest.raises(ValueError):
            validate_latitude(float("nan"))

    def test_latitude_inf_rejected(self):
        with pytest.raises(ValueError):
            validate_latitude(float("inf"))

    def test_longitude_boundaries(self):
        assert validate_longitude(180.0) == 180.0
        assert validate_longitude(-180.0) == -180.0

    def test_longitude_out_of_range(self):
        with pytest.raises(ValueError):
            validate_longitude(180.5)


class TestGeoPoint:
    def test_construction(self):
        p = GeoPoint(40.71, -74.01)
        assert p.lat == 40.71
        assert p.lon == -74.01

    def test_invalid_latitude_raises(self):
        with pytest.raises(ValueError):
            GeoPoint(95.0, 0.0)

    def test_invalid_longitude_raises(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 200.0)

    def test_hashable_and_equal(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))

    def test_ordering_by_lat_then_lon(self):
        assert GeoPoint(1.0, 5.0) < GeoPoint(2.0, 0.0)
        assert GeoPoint(1.0, 1.0) < GeoPoint(1.0, 2.0)

    def test_as_tuple(self):
        assert GeoPoint(3.5, -7.25).as_tuple() == (3.5, -7.25)

    def test_as_radians(self):
        lat, lon = GeoPoint(90.0, -180.0).as_radians()
        assert lat == pytest.approx(math.pi / 2)
        assert lon == pytest.approx(-math.pi)

    def test_str_hemispheres(self):
        assert "N" in str(GeoPoint(10.0, 10.0))
        assert "S" in str(GeoPoint(-10.0, 10.0))
        assert "W" in str(GeoPoint(10.0, -10.0))


class TestBoundingBox:
    def test_contains_inside(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains(GeoPoint(5.0, 5.0))

    def test_contains_edges_inclusive(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(10.0, 10.0))

    def test_excludes_outside(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert not box.contains(GeoPoint(-0.1, 5.0))
        assert not box.contains(GeoPoint(5.0, 10.1))

    def test_inverted_south_north_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(10.0, 0.0, 0.0, 10.0)

    def test_inverted_west_east_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0.0, 10.0, 10.0, 0.0)

    def test_dimensions(self):
        box = BoundingBox(10.0, 20.0, 30.0, 50.0)
        assert box.height_degrees == pytest.approx(20.0)
        assert box.width_degrees == pytest.approx(30.0)

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.center == GeoPoint(5.0, 10.0)

    def test_clip(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        points = [GeoPoint(5.0, 5.0), GeoPoint(20.0, 20.0)]
        assert list(box.clip(points)) == [GeoPoint(5.0, 5.0)]

    def test_expanded(self):
        box = BoundingBox(10.0, 10.0, 20.0, 20.0).expanded(1.0)
        assert box.south == 9.0
        assert box.east == 21.0

    def test_expanded_clamps_to_valid_range(self):
        box = BoundingBox(-89.5, -179.5, 89.5, 179.5).expanded(5.0)
        assert box.south == -90.0
        assert box.north == 90.0
        assert box.west == -180.0
        assert box.east == 180.0

    def test_expanded_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(-1.0)

    def test_corners_order(self):
        corners = BoundingBox(0.0, 0.0, 1.0, 2.0).corners()
        assert corners[0] == GeoPoint(0.0, 0.0)   # SW
        assert corners[2] == GeoPoint(1.0, 2.0)   # NE

    def test_continental_us_contains_known_cities(self):
        assert CONTINENTAL_US.contains(GeoPoint(40.71, -74.01))   # NYC
        assert CONTINENTAL_US.contains(GeoPoint(47.61, -122.33))  # Seattle
        assert not CONTINENTAL_US.contains(GeoPoint(21.3, -157.8))  # Honolulu
