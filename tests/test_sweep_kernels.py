"""Kernel-parity tests: the bucketed multi-source sweep vs the exact
heapq reference, plus the reference kernel's target early-exit.

The bucketed kernel's contract (see :mod:`repro.engine.sweep`) is that
distances and parents are *bitwise* equal to the reference whenever the
shortest-path tree is unique — candidate costs are accumulated with the
identical float operations in path order.  The hypothesis harness draws
random small topologies and alphas and pins exactly that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.arrays import CsrGraph
from repro.engine.sweep import csr_sweep, csr_sweep_batch
from repro.graph.core import Graph

_INF = float("inf")


def build_csr(edges, n):
    """CSR arrays + per-entry risk for an undirected weighted graph."""
    g = Graph()
    for i in range(n):
        g.add_node(f"n{i}")
    for i, j, w in edges:
        g.add_edge(f"n{i}", f"n{j}", w)
    csr = CsrGraph(g)
    risk = np.linspace(0.1, 2.0, n)
    entry_risk = risk[np.asarray(csr.indices, dtype=np.int64)]
    return csr, entry_risk


def line_csr(weights):
    """A path graph 0-1-2-...-k with the given edge weights."""
    n = len(weights) + 1
    return build_csr(
        [(i, i + 1, w) for i, w in enumerate(weights)], n
    )


@st.composite
def random_topologies(draw):
    """(edges, n, alphas): sparse random graphs, 2-14 nodes."""
    n = draw(st.integers(2, 14))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(0, min(len(pairs), 3 * n)))
    chosen = draw(
        st.lists(
            st.sampled_from(pairs),
            min_size=count,
            max_size=count,
            unique=True,
        )
    ) if pairs else []
    edges = [
        (i, j, draw(st.floats(0.05, 50.0, allow_nan=False)))
        for i, j in chosen
    ]
    alpha = draw(st.floats(0.0, 3.0, allow_nan=False))
    return edges, n, (0.0, alpha)


class TestBucketedParity:
    """Satellite: property test that bucketed == exact, bit for bit."""

    @given(random_topologies())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_bitwise(self, topo):
        edges, n, alphas = topo
        csr, entry_risk = build_csr(edges, n)
        sources = list(range(n))
        for alpha in alphas:
            batch = csr_sweep_batch(
                csr.indptr, csr.indices, csr.weights, entry_risk,
                sources, alpha,
            )
            assert len(batch) == n
            for source, result in zip(sources, batch):
                ref = csr_sweep(
                    *_lists(csr), entry_risk, source, alpha
                )
                assert result.source == source
                assert result.alpha == alpha
                # Bitwise: == on floats, no tolerance.
                assert list(result.dist) == ref.dist
                assert sorted(int(v) for v in result.order) == sorted(
                    ref.order
                )
                # Parents are pinned exactly wherever the tree is
                # unique; on exact ties each kernel's deterministic
                # tie-break may pick a different optimal predecessor,
                # so there we require only that the chosen parent
                # achieves the distance bit-for-bit.
                for v in range(n):
                    p = int(result.parent[v])
                    if v == source or ref.dist[v] == _INF:
                        assert p == ref.parent[v] == -1
                        continue
                    achievers = _achievers(
                        csr, entry_risk, ref.dist, v, alpha
                    )
                    assert p in achievers
                    if len(achievers) == 1:
                        assert p == ref.parent[v]

    @given(random_topologies())
    @settings(max_examples=40, deadline=None)
    def test_delta_choice_is_correctness_neutral(self, topo):
        edges, n, alphas = topo
        csr, entry_risk = build_csr(edges, n)
        sources = list(range(n))
        alpha = alphas[1]
        reference = csr_sweep_batch(
            csr.indptr, csr.indices, csr.weights, entry_risk,
            sources, alpha,
        )
        for delta in (1e-6, 0.7, 1e9):
            other = csr_sweep_batch(
                csr.indptr, csr.indices, csr.weights, entry_risk,
                sources, alpha, delta=delta,
            )
            for a, b in zip(reference, other):
                # Distances are delta-invariant bit-for-bit; parents
                # may differ between exactly-tied optima (the bucket
                # layout decides which achiever relaxes first), but
                # must always achieve the distance.
                assert np.array_equal(a.dist, b.dist)
                for v in range(n):
                    if v == b.source or a.dist[v] == _INF:
                        assert int(b.parent[v]) == -1
                        continue
                    assert int(b.parent[v]) in _achievers(
                        csr, entry_risk, list(a.dist), v, alpha
                    )


def _lists(csr):
    return csr.indptr_list, csr.indices_list, csr.weights_list


def _achievers(csr, entry_risk, dist, v, alpha):
    """Every predecessor u whose relaxation hits dist[v] bit-for-bit."""
    found = set()
    for u in range(csr.node_count):
        for k in range(csr.indptr_list[u], csr.indptr_list[u + 1]):
            if csr.indices_list[k] != v or dist[u] == _INF:
                continue
            cand = dist[u] + csr.weights_list[k] + alpha * entry_risk[k]
            if cand == dist[v]:
                found.add(u)
    return found


class TestBucketedEdgeCases:
    def test_empty_sources(self):
        csr, entry_risk = line_csr([1.0, 2.0])
        assert csr_sweep_batch(
            csr.indptr, csr.indices, csr.weights, entry_risk, [], 0.0
        ) == []

    def test_repeated_source_both_answered(self):
        csr, entry_risk = line_csr([1.0, 2.0, 3.0])
        batch = csr_sweep_batch(
            csr.indptr, csr.indices, csr.weights, entry_risk,
            [2, 2], 0.5,
        )
        assert len(batch) == 2
        assert np.array_equal(batch[0].dist, batch[1].dist)
        assert np.array_equal(batch[0].parent, batch[1].parent)

    def test_out_of_range_source_rejected(self):
        csr, entry_risk = line_csr([1.0])
        with pytest.raises(IndexError):
            csr_sweep_batch(
                csr.indptr, csr.indices, csr.weights, entry_risk,
                [5], 0.0,
            )

    def test_disconnected_nodes_stay_inf(self):
        csr, entry_risk = build_csr([(0, 1, 2.0)], 4)
        (result,) = csr_sweep_batch(
            csr.indptr, csr.indices, csr.weights, entry_risk, [0], 0.0
        )
        assert result.dist[1] == 2.0
        assert result.dist[2] == _INF and result.dist[3] == _INF
        assert result.parent[2] == -1 and result.parent[3] == -1

    def test_path_to_walks_parent_chain(self):
        csr, entry_risk = line_csr([1.0, 1.0, 1.0])
        (result,) = csr_sweep_batch(
            csr.indptr, csr.indices, csr.weights, entry_risk, [0], 0.0
        )
        assert result.path_to(3) == [0, 1, 2, 3]
        csr2, er2 = build_csr([(0, 1, 1.0)], 3)
        (r2,) = csr_sweep_batch(
            csr2.indptr, csr2.indices, csr2.weights, er2, [0], 0.0
        )
        with pytest.raises(ValueError):
            r2.path_to(2)


class TestExactEarlyExit:
    """Satellite: csr_sweep's target early-exit regression pins."""

    def test_target_settle_stops_the_sweep(self):
        # Line 0-1-2-3-4: exiting at node 1 must leave 3 and 4 untouched.
        csr, entry_risk = line_csr([1.0, 1.0, 1.0, 1.0])
        early = csr_sweep(*_lists(csr), entry_risk, 0, 0.0, target=1)
        assert early.dist[1] == 1.0
        assert early.dist[3] == _INF and early.dist[4] == _INF

    def test_early_exit_prefix_matches_full_sweep(self):
        csr, entry_risk = build_csr(
            [(0, 1, 1.0), (0, 2, 4.0), (1, 2, 1.0), (2, 3, 1.0),
             (1, 3, 5.0), (3, 4, 2.0)],
            5,
        )
        for alpha in (0.0, 0.3):
            full = csr_sweep(*_lists(csr), entry_risk, 0, alpha)
            for target in range(5):
                early = csr_sweep(
                    *_lists(csr), entry_risk, 0, alpha, target=target
                )
                # Parity-safety contract: distance, parent chain and
                # first-touch prefix identical to the full sweep.
                assert early.dist[target] == full.dist[target]
                assert early.path_to(target) == full.path_to(target)
                prefix = len(early.order)
                assert early.order == full.order[:prefix]

    def test_unreached_target_degenerates_to_full_sweep(self):
        csr, entry_risk = build_csr([(0, 1, 1.0)], 3)
        early = csr_sweep(*_lists(csr), entry_risk, 0, 0.0, target=2)
        full = csr_sweep(*_lists(csr), entry_risk, 0, 0.0)
        assert early.dist == full.dist
