"""Component-scoped delta invalidation: ingest keeps untouched islands.

The streaming-ingest issue's engine half: ``update_model`` computes the
set of *dirty* nodes (entry risk or share moved), maps them to
connected components, and drops only the sweeps and per-source results
whose source lives in a dirty component.  A localized ``o_h`` change —
one region's events moved — therefore keeps every memoized sweep for
sources in untouched islands, served from cache with their hit
counters advancing, while touched sources recompute and answer from
the new field.
"""

from __future__ import annotations

import pytest

from repro import RoutingSession
from repro.engine import clear_engine_registry
from repro.geo.coords import GeoPoint
from repro.risk.model import RiskModel
from repro.topology.network import Network, NetworkTier, PoP

WEST_ISLAND = ("isles:sf", "isles:la", "isles:fresno")
EAST_ISLAND = ("isles:nyc", "isles:boston", "isles:albany")


def build_two_island_network() -> Network:
    """Two triangles with no path between them (two CSR components)."""
    network = Network("isles", tier=NetworkTier.TIER1)
    network.add_pop(PoP("isles:sf", "SF", GeoPoint(37.77, -122.42)))
    network.add_pop(PoP("isles:la", "LA", GeoPoint(34.05, -118.24)))
    network.add_pop(PoP("isles:fresno", "Fresno", GeoPoint(36.75, -119.77)))
    network.add_pop(PoP("isles:nyc", "NYC", GeoPoint(40.71, -74.01)))
    network.add_pop(PoP("isles:boston", "Boston", GeoPoint(42.36, -71.06)))
    network.add_pop(PoP("isles:albany", "Albany", GeoPoint(42.65, -73.75)))
    network.add_link("isles:sf", "isles:la")
    network.add_link("isles:la", "isles:fresno")
    network.add_link("isles:fresno", "isles:sf")
    network.add_link("isles:nyc", "isles:boston")
    network.add_link("isles:boston", "isles:albany")
    network.add_link("isles:albany", "isles:nyc")
    return network


def build_two_island_model(west_risk: float = 2e-2) -> RiskModel:
    pops = WEST_ISLAND + EAST_ISLAND
    shares = {pop_id: 1.0 / len(pops) for pop_id in pops}
    oh = {pop_id: 1e-3 for pop_id in pops}
    for pop_id in WEST_ISLAND:
        oh[pop_id] = west_risk
    of = {pop_id: 0.0 for pop_id in pops}
    return RiskModel(shares, oh, of, gamma_h=1e5, gamma_f=1e3)


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


@pytest.fixture
def session():
    return RoutingSession(build_two_island_network(), build_two_island_model())


def _warm(session):
    """One risk-weighted pair per island; returns the two answers."""
    west = session.pair("isles:sf", "isles:fresno")
    east = session.pair("isles:nyc", "isles:albany")
    return west, east


class TestComponentScopedInvalidation:
    def test_untouched_island_keeps_sweeps_and_results(self, session):
        _warm(session)
        engine = session.engine
        before = engine.stats()
        assert before["cached_sweeps"] > 0

        # Ingest-shaped change: only the west island's o_h moves.
        changed = session.update_historical(
            {
                pop_id: (5e-2 if pop_id in WEST_ISLAND else 1e-3)
                for pop_id in WEST_ISLAND + EAST_ISLAND
            }
        )
        assert changed is True

        # Re-serving the east pair is pure cache: no new sweeps run.
        misses_before = engine.stats()["sweeps"]["misses"]
        hits_before = engine.stats()["sweeps"]["hits"]
        session.pair("isles:nyc", "isles:albany")
        after = engine.stats()
        assert after["sweeps"]["misses"] == misses_before
        assert after["sweeps"]["hits"] >= hits_before

        # The west pair recomputes (its component is dirty).
        session.pair("isles:sf", "isles:fresno")
        assert engine.stats()["sweeps"]["misses"] > misses_before

    def test_untouched_island_answers_match_cold_engine(self, session):
        _warm(session)
        new_oh = {
            pop_id: (5e-2 if pop_id in WEST_ISLAND else 1e-3)
            for pop_id in WEST_ISLAND + EAST_ISLAND
        }
        session.update_historical(new_oh)
        warm_west = session.pair("isles:sf", "isles:fresno")
        warm_east = session.pair("isles:nyc", "isles:albany")

        clear_engine_registry()
        cold = RoutingSession(
            build_two_island_network(),
            build_two_island_model().with_historical_risk(new_oh),
        )
        cold_west = cold.pair("isles:sf", "isles:fresno")
        cold_east = cold.pair("isles:nyc", "isles:albany")
        for warm, fresh in ((warm_west, cold_west), (warm_east, cold_east)):
            assert warm.riskroute.path == fresh.riskroute.path
            assert warm.riskroute.bit_risk_miles == fresh.riskroute.bit_risk_miles
            assert warm.shortest.path == fresh.shortest.path

    def test_fingerprint_moves_with_localized_change(self, session):
        fingerprint = session.engine.risk_fingerprint
        session.update_historical(
            {
                pop_id: (5e-2 if pop_id in WEST_ISLAND else 1e-3)
                for pop_id in WEST_ISLAND + EAST_ISLAND
            }
        )
        assert session.engine.risk_fingerprint != fingerprint

    def test_global_change_still_clears_everything(self, session):
        _warm(session)
        engine = session.engine
        session.update_historical(
            {
                pop_id: 7e-3
                for pop_id in WEST_ISLAND + EAST_ISLAND
            }
        )
        stats = engine.stats()
        # Both components dirty: only geographic (alpha == 0) sweeps
        # may survive, and no per-source results do.
        assert stats["cached_results"] == 0
