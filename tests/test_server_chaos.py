"""Chaos suite: seeded fault schedules against the daemon.

Drives the fault-injection plane (`repro/server/faults.py`) through the
supervision, rollback and self-healing-client machinery and asserts the
resilience invariants the issue names:

* every admitted request receives exactly one reply or a clean close —
  never a hung socket;
* the risk fingerprint never regresses to a half-applied state: a
  failed forecast swap rolls back, and every reply's payload is the
  exact answer of the model its fingerprint names;
* a retried token-guarded ``update_forecast`` applies exactly once;
* a crashed worker is restarted, ``health`` flips to ``degraded`` with
  the reason, and heals back to ``ok`` on the next clean batch.

Fault schedules are deterministic: ``hits`` rules fire on exact visit
counts, ``rate`` rules draw from one seeded RNG.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import random

import pytest

from repro import RoutingSession
from repro.engine import RoutingEngine, clear_engine_registry
from repro.server import (
    FaultPlane,
    FaultRule,
    RetryPolicy,
    RiskRouteClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import pair_to_dict, route_to_dict
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_engine_registry()
    yield
    clear_engine_registry()


def _fast_retry(attempts: int = 5, seed: int = 0) -> RetryPolicy:
    return RetryPolicy(
        attempts=attempts, base_delay=0.01, max_delay=0.05, budget=30.0
    )


def _serve(network, model, faults, **config):
    thread = ServerThread(
        RoutingSession(network, model),
        ServerConfig(faults=faults, **config),
    )
    thread.start()
    return thread


class TestFaultPlaneUnit:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("not_a_site")
        with pytest.raises(ValueError):
            FaultRule("partial_write", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule("partial_write", hits=(0,))
        with pytest.raises(ValueError):
            FaultRule("executor_stall", delay=-1.0)

    def test_hits_fire_on_exact_visits(self):
        plane = FaultPlane([FaultRule("worker_exception", hits=(2, 4))])
        fired = [
            plane.check("worker_exception") is not None for _ in range(5)
        ]
        assert fired == [False, True, False, True, False]
        assert plane.visits["worker_exception"] == 5
        assert plane.fires["worker_exception"] == 2
        assert plane.snapshot() == {
            "worker_exception": {"visits": 5, "fires": 2}
        }

    def test_limit_caps_fires(self):
        plane = FaultPlane(
            [FaultRule("connection_reset", rate=1.0, limit=2)]
        )
        fired = [
            plane.check("connection_reset") is not None for _ in range(5)
        ]
        assert fired == [True, True, False, False, False]

    def test_rate_is_seed_deterministic(self):
        seq = []
        for _ in range(2):
            plane = FaultPlane(
                [FaultRule("partial_write", rate=0.4)], seed=99
            )
            seq.append(
                tuple(
                    plane.check("partial_write") is not None
                    for _ in range(32)
                )
            )
        assert seq[0] == seq[1]
        assert any(seq[0]) and not all(seq[0])

    def test_unknown_site_check_raises(self):
        with pytest.raises(ValueError):
            FaultPlane().check("meteor_strike")

    def test_disabled_plane(self):
        plane = FaultPlane()
        assert not plane.enabled
        assert plane.check("partial_write") is None


class TestWorkerSupervision:
    def test_crash_degrades_restarts_and_heals(
        self, diamond_network, diamond_model
    ):
        # Visit counting: every queued batch (queries AND control ops)
        # visits worker_exception once; health bypasses the queue.
        faults = FaultPlane([FaultRule("worker_exception", hits=(2,))])
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            with RiskRouteClient(host, port) as client:
                ok = client.route("diamond:west", "diamond:east")  # batch 1
                with pytest.raises(ServerError) as err:
                    client.route("diamond:west", "diamond:east")   # batch 2
                assert err.value.code == "internal"
                assert "crashed" in err.value.message
                health = client.health()
                assert health["status"] == "degraded"
                assert "worker_exception" in health["degraded_reason"]
                assert health["worker_restarts"] == 1
                # The restarted worker serves the same answer.
                again = client.route("diamond:west", "diamond:east")
                assert again == ok
                assert client.health()["status"] == "ok"  # healed
                stats = client.stats()
            assert stats["worker_crashes"] == 1
            assert stats["worker_restarts"] == 1
            assert stats["degraded_reason"] is None
            assert stats["faults"]["worker_exception"]["fires"] == 1
        finally:
            thread.stop()

    def test_crashed_batch_gets_exactly_one_reply_each(
        self, diamond_network, diamond_model
    ):
        faults = FaultPlane([FaultRule("worker_exception", hits=(1,))])
        thread = _serve(
            diamond_network, diamond_model, faults, batch_linger=0.01
        )
        try:
            host, port = thread.address
            sock = socket.create_connection((host, port), timeout=10)
            stream = sock.makefile("rwb")
            try:
                line = (
                    b'{"id": %d, "op": "route", "source": "diamond:west", '
                    b'"target": "diamond:east"}\n'
                )
                for request_id in (1, 2, 3):
                    stream.write(line % request_id)
                stream.flush()
                replies = [json.loads(stream.readline()) for _ in range(3)]
                # Exactly one reply per pipelined request, ids intact;
                # whichever batch the crash hit answered `internal`, any
                # requests in a later batch were served by the restarted
                # worker — nothing hangs and nothing is answered twice.
                assert sorted(r["id"] for r in replies) == [1, 2, 3]
                internal = [r for r in replies if not r["ok"]]
                assert internal, "the injected crash produced no error"
                for reply in internal:
                    assert reply["error"]["code"] == "internal"
                # The connection is still alive for the next request.
                stream.write(line % 4)
                stream.flush()
                final = json.loads(stream.readline())
                assert final["id"] == 4 and final["ok"] is True
            finally:
                sock.close()
            assert thread.server.stats.worker_crashes == 1
        finally:
            thread.stop()


class TestConnectionFaults:
    def test_reset_heals_via_retry_policy(
        self, diamond_network, diamond_model
    ):
        expected = route_to_dict(
            RoutingSession(diamond_network, diamond_model).route(
                "diamond:west", "diamond:east"
            )
        )
        # Visit counting: one visit per request line read by a handler.
        faults = FaultPlane([FaultRule("connection_reset", hits=(2,))])
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            client = RiskRouteClient(
                host, port, timeout=10,
                retry=_fast_retry(), rng=random.Random(1),
            )
            with client:
                for _ in range(3):
                    assert (
                        client.route("diamond:west", "diamond:east")
                        == expected
                    )
            assert client.reconnects == 1
            assert thread.server.config.faults.fires["connection_reset"] == 1
        finally:
            thread.stop()

    def test_partial_write_marks_client_closed_then_reconnects(
        self, diamond_network, diamond_model
    ):
        # Satellite: a truncated/garbage reply line must surface as
        # ConnectionError and poison the socket, not leak a raw
        # json.JSONDecodeError over a half-read stream.
        faults = FaultPlane([FaultRule("partial_write", hits=(1,))])
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            with RiskRouteClient(host, port, timeout=10) as client:
                with pytest.raises(ConnectionError) as err:
                    client.route("diamond:west", "diamond:east")
                assert "malformed reply" in str(err.value)
                assert client.closed
                # The next call reconnects and succeeds.
                result = client.route("diamond:west", "diamond:east")
                assert result["path"][0] == "diamond:west"
                assert client.reconnects == 1
        finally:
            thread.stop()

    def test_delayed_write_delivers_one_intact_reply(
        self, diamond_network, diamond_model
    ):
        faults = FaultPlane(
            [FaultRule("delayed_write", hits=(1,), delay=0.1)]
        )
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            started = time.monotonic()
            with RiskRouteClient(host, port, timeout=10) as client:
                result = client.route("diamond:west", "diamond:east")
            assert time.monotonic() - started >= 0.1
            assert result["path"][0] == "diamond:west"
            assert thread.server.config.faults.fires["delayed_write"] == 1
        finally:
            thread.stop()

    def test_executor_stall_does_not_corrupt_replies(
        self, diamond_network, diamond_model
    ):
        faults = FaultPlane(
            [FaultRule("executor_stall", hits=(1,), delay=0.2)]
        )
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            with RiskRouteClient(host, port, timeout=10) as client:
                result = client.route("diamond:west", "diamond:east")
                assert result["path"][-1] == "diamond:east"
            assert thread.server.config.faults.fires["executor_stall"] == 1
        finally:
            thread.stop()


class TestTransactionalSwap:
    @staticmethod
    def _spiked(network):
        of_new = {pop: 0.0 for pop in network.pop_ids()}
        of_new["diamond:north"] = 10.0
        return of_new

    def test_failed_swap_rolls_back_field_and_fingerprint(
        self, diamond_network
    ):
        network = diamond_network
        graph = network.distance_graph()
        model_old = build_diamond_model()
        of_new = self._spiked(network)
        model_new = model_old.with_forecast_risk(of_new)
        engine_old = RoutingEngine(graph, model_old)
        engine_new = RoutingEngine(graph, model_new)
        fp_old = engine_old.risk_fingerprint
        fp_new = engine_new.risk_fingerprint
        expected = {
            fp_old: pair_to_dict(
                engine_old.route_pair("diamond:west", "diamond:east")
            ),
            fp_new: pair_to_dict(
                engine_new.route_pair("diamond:west", "diamond:east")
            ),
        }
        assert fp_old != fp_new

        # The first swap fails *after* the new model applied — the
        # worst mid-apply point — and must roll back completely.
        faults = FaultPlane([FaultRule("apply_update", hits=(1,))])
        thread = _serve(network, model_old, faults)
        try:
            host, port = thread.address
            with RiskRouteClient(host, port, timeout=10) as client:
                before = client.pair("diamond:west", "diamond:east")
                assert client.last_fingerprint == fp_old
                assert before == expected[fp_old]

                with pytest.raises(ServerError) as err:
                    client.update_forecast(of_new, token="swap-1")
                assert err.value.code == "internal"

                # Rollback: the fingerprint did not move, the served
                # answer is still exactly the old model's.
                after_fail = client.pair("diamond:west", "diamond:east")
                assert client.last_fingerprint == fp_old
                assert after_fail == expected[fp_old]
                assert client.stats()["forecast_swaps"] == 0

                # Retrying the same token now applies — exactly once.
                result = client.update_forecast(of_new, token="swap-1")
                assert result == {"changed": True, "duplicate": False}
                assert client.last_fingerprint == fp_new
                after = client.pair("diamond:west", "diamond:east")
                assert after == expected[fp_new]

                # A replay of the applied token is a no-op duplicate.
                replay = client.update_forecast(of_new, token="swap-1")
                assert replay == {"changed": True, "duplicate": True}
                assert client.last_fingerprint == fp_new
                stats = client.stats()
            assert stats["forecast_swaps"] == 1
            assert stats["risk_fingerprint"] == fp_new
        finally:
            thread.stop()

    def test_torn_reply_retry_applies_token_once(self, diamond_network):
        network = diamond_network
        model_old = build_diamond_model()
        of_new = self._spiked(network)
        # The update's own reply (first write of the session) is torn;
        # the retrying client re-sends, and the token ledger answers the
        # duplicate without a second swap.
        faults = FaultPlane([FaultRule("partial_write", hits=(1,))])
        thread = _serve(network, model_old, faults)
        try:
            host, port = thread.address
            client = RiskRouteClient(
                host, port, timeout=10,
                retry=_fast_retry(), rng=random.Random(7),
            )
            with client:
                result = client.update_forecast(of_new, token="tok-7")
                assert result["changed"] is True
                assert result["duplicate"] is True  # first apply's reply died
                assert client.reconnects == 1
                stats = client.stats()
            assert stats["forecast_swaps"] == 1
        finally:
            thread.stop()

    def test_untokened_update_is_not_retried_on_drop(
        self, diamond_network, diamond_model
    ):
        faults = FaultPlane([FaultRule("partial_write", hits=(1,))])
        thread = _serve(diamond_network, diamond_model, faults)
        try:
            host, port = thread.address
            client = RiskRouteClient(
                host, port, timeout=10,
                retry=_fast_retry(), rng=random.Random(3),
            )
            with client:
                # call() with an explicit token=None stays untokened —
                # a drop must surface, not silently re-send the write.
                with pytest.raises(ConnectionError):
                    client.call(
                        "update_forecast",
                        risk={"diamond:north": 1.0},
                    )
        finally:
            thread.stop()


class TestSeededMixedChaos:
    """Four retrying clients under a seeded storm of resets, torn
    writes and worker crashes: every call either returns the one true
    answer or a typed `internal` crash error — nothing hangs, nothing
    mixes models."""

    N_CLIENTS = 4
    CALLS_PER_CLIENT = 15

    def test_invariants_hold_under_fault_storm(
        self, diamond_network, diamond_model
    ):
        expected = pair_to_dict(
            RoutingSession(diamond_network, diamond_model).pair(
                "diamond:west", "diamond:east"
            )
        )
        faults = FaultPlane(
            [
                FaultRule("connection_reset", rate=0.06),
                FaultRule("partial_write", rate=0.06),
                FaultRule("worker_exception", rate=0.04, limit=3),
            ],
            seed=1234,
        )
        thread = _serve(
            diamond_network, diamond_model, faults, batch_linger=0.002
        )
        try:
            host, port = thread.address
            wrong_payloads = []
            hard_failures = []
            crash_errors = []

            def hammer(seed: int) -> None:
                try:
                    client = RiskRouteClient(
                        host, port, timeout=15,
                        retry=_fast_retry(attempts=8),
                        rng=random.Random(seed),
                    )
                    with client:
                        for _ in range(self.CALLS_PER_CLIENT):
                            try:
                                served = client.pair(
                                    "diamond:west", "diamond:east"
                                )
                            except ServerError as exc:
                                if exc.code == "internal":
                                    crash_errors.append(exc.message)
                                    continue
                                raise
                            if served != expected:
                                wrong_payloads.append(served)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    hard_failures.append(repr(exc))

            workers = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(self.N_CLIENTS)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert not any(w.is_alive() for w in workers), "client hung"
            assert not hard_failures, hard_failures[:3]
            assert not wrong_payloads, wrong_payloads[:3]
            stats_server = thread.server.stats
            # Crashes were survived, not fatal: the server kept serving.
            assert stats_server.worker_crashes == (
                stats_server.worker_restarts
            )
            assert len(crash_errors) <= stats_server.worker_crashes * (
                thread.server.config.max_batch
            )
        finally:
            thread.stop()
