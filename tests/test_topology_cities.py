"""Tests for repro.topology.cities."""

import pytest

from repro.geo.coords import CONTINENTAL_US
from repro.topology.cities import (
    ALL_CITIES,
    cities_in_states,
    city_by_name,
    top_cities,
)


class TestGazetteer:
    def test_substantial_corpus(self):
        assert len(ALL_CITIES) >= 300

    def test_all_inside_continental_us(self):
        for city in ALL_CITIES:
            assert CONTINENTAL_US.contains(city.location), city.key

    def test_keys_unique(self):
        keys = [c.key for c in ALL_CITIES]
        assert len(keys) == len(set(keys))

    def test_positive_populations(self):
        assert all(c.population > 0 for c in ALL_CITIES)

    def test_states_known_codes(self):
        from repro.geo.regions import STATE_BOXES

        for city in ALL_CITIES:
            assert city.state in STATE_BOXES, city.key


class TestLookup:
    def test_by_name_and_state(self):
        city = city_by_name("Portland", "OR")
        assert city.state == "OR"

    def test_ambiguous_requires_state(self):
        with pytest.raises(KeyError):
            city_by_name("Portland")

    def test_unambiguous_without_state(self):
        assert city_by_name("Chicago").state == "IL"

    def test_unknown_city(self):
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_unknown_state_combo(self):
        with pytest.raises(KeyError):
            city_by_name("Chicago", "TX")


class TestSelections:
    def test_top_cities_sorted_by_population(self):
        top = top_cities(10)
        populations = [c.population for c in top]
        assert populations == sorted(populations, reverse=True)
        assert top[0].name == "New York"

    def test_top_cities_negative(self):
        with pytest.raises(ValueError):
            top_cities(-1)

    def test_top_cities_zero(self):
        assert top_cities(0) == []

    def test_cities_in_states(self):
        texan = cities_in_states(["TX"])
        assert all(c.state == "TX" for c in texan)
        assert len(texan) >= 20

    def test_cities_in_states_sorted(self):
        cities = cities_in_states(["CA", "TX"])
        populations = [c.population for c in cities]
        assert populations == sorted(populations, reverse=True)

    def test_cities_in_unknown_state_empty(self):
        assert cities_in_states(["ZZ"]) == []
