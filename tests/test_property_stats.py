"""Property-based tests for the statistics substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import GeoPoint
from repro.stats.divergence import (
    jensen_shannon_discrete,
    kl_divergence_discrete,
)
from repro.stats.kde import GaussianKDE
from repro.stats.regression import linear_regression, r_squared

lats = st.floats(min_value=25.0, max_value=49.0)
lons = st.floats(min_value=-124.0, max_value=-67.0)
points = st.builds(GeoPoint, lats, lons)
event_lists = st.lists(points, min_size=1, max_size=25)
bandwidths = st.floats(min_value=5.0, max_value=500.0)


class TestKdeProperties:
    @given(event_lists, bandwidths, points)
    @settings(max_examples=60, deadline=None)
    def test_density_non_negative(self, events, bandwidth, query):
        kde = GaussianKDE(events, bandwidth)
        assert kde.density(query) >= 0.0

    @given(event_lists, bandwidths)
    @settings(max_examples=40, deadline=None)
    def test_peak_at_events(self, events, bandwidth):
        """Density at some event location >= density far away."""
        kde = GaussianKDE(events, bandwidth)
        at_events = kde.density_many(events)
        far = kde.density(GeoPoint(25.0, -67.0))
        assert at_events.max() >= far - 1e-15

    @given(points, bandwidths)
    @settings(max_examples=40, deadline=None)
    def test_single_event_radial_decay(self, center, bandwidth):
        from repro.geo.distance import destination_point

        kde = GaussianKDE([center], bandwidth)
        densities = [
            kde.density(destination_point(center, 90.0, radius))
            for radius in (0.0, bandwidth, 2 * bandwidth, 4 * bandwidth)
        ]
        for closer, farther in zip(densities, densities[1:]):
            assert closer >= farther - 1e-18

    @given(event_lists, bandwidths, st.lists(points, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(self, events, bandwidth, queries):
        kde = GaussianKDE(events, bandwidth)
        batch = kde.density_many(queries)
        for query, value in zip(queries, batch):
            assert math.isclose(
                kde.density(query), value, rel_tol=1e-9, abs_tol=1e-300
            )

    @given(
        event_lists,
        bandwidths,
        st.lists(points, min_size=1, max_size=10),
        st.floats(min_value=7.0, max_value=12.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncated_matches_exact_within_bound(
        self, events, bandwidth, queries, cutoff
    ):
        """Truncation error stays under the documented bound.

        The module docstring derives |truncated - exact| <=
        exp(-c^2/2) / (2 pi sigma^2) for cutoff c: dropped kernels each
        contribute < exp(-c^2/2) and the normaliser carries the 1/N.
        """
        exact = GaussianKDE(events, bandwidth, cutoff_sigmas=None)
        truncated = GaussianKDE(events, bandwidth, cutoff_sigmas=cutoff)
        dense = exact.density_many(queries)
        fast = truncated.density_many(queries)
        bound = math.exp(-(cutoff**2) / 2.0) / (
            2.0 * math.pi * bandwidth**2
        )
        np.testing.assert_allclose(fast, dense, rtol=1e-9, atol=bound)
        # Truncation can only drop mass, never add it (up to float sum
        # reordering).
        assert np.all(fast <= dense * (1.0 + 1e-9) + 1e-300)

    @given(event_lists, bandwidths, st.lists(points, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_log_density_truncation_lossless(self, events, bandwidth, queries):
        """The log path truncates only exact-zero kernels, so scores
        match dense mode to float-sum reordering."""
        exact = GaussianKDE(events, bandwidth, cutoff_sigmas=None)
        truncated = GaussianKDE(events, bandwidth)
        np.testing.assert_allclose(
            truncated.log_density_many(queries),
            exact.log_density_many(queries),
            rtol=1e-12,
            atol=1e-12,
        )


def _distributions(size):
    return st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=size, max_size=size
    ).map(lambda ws: [w / sum(ws) for w in ws])


class TestDivergenceProperties:
    @given(_distributions(5), _distributions(5))
    @settings(max_examples=60, deadline=None)
    def test_kl_non_negative(self, p, q):
        assert kl_divergence_discrete(p, q) >= -1e-12

    @given(_distributions(6))
    @settings(max_examples=40, deadline=None)
    def test_kl_self_zero(self, p):
        assert abs(kl_divergence_discrete(p, p)) < 1e-12

    @given(_distributions(5), _distributions(5))
    @settings(max_examples=60, deadline=None)
    def test_js_symmetric_and_bounded(self, p, q):
        forward = jensen_shannon_discrete(p, q)
        backward = jensen_shannon_discrete(q, p)
        assert abs(forward - backward) < 1e-12
        assert -1e-12 <= forward <= math.log(2.0) + 1e-12


class TestRegressionProperties:
    xy_lists = st.lists(
        st.tuples(
            st.floats(-100.0, 100.0),
            st.floats(-100.0, 100.0),
        ),
        min_size=3,
        max_size=30,
    )

    @given(xy_lists)
    @settings(max_examples=60, deadline=None)
    def test_r_squared_in_unit_interval(self, pairs):
        x = [a for a, _ in pairs]
        y = [b for _, b in pairs]
        fit = linear_regression(x, y)
        assert 0.0 <= fit.r_squared <= 1.0 + 1e-12

    @given(
        st.lists(st.floats(-50.0, 50.0), min_size=3, max_size=20, unique=True),
        st.floats(-5.0, 5.0),
        st.floats(-10.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_line_recovered(self, x, slope, intercept):
        y = [slope * v + intercept for v in x]
        fit = linear_regression(x, y)
        assert abs(fit.slope - slope) < 1e-6 * max(1.0, abs(slope))
        assert fit.r_squared > 1.0 - 1e-9 or all(
            abs(v - y[0]) < 1e-12 for v in y
        )

    @given(xy_lists)
    @settings(max_examples=40, deadline=None)
    def test_fit_beats_mean_predictor(self, pairs):
        """OLS predictions can never explain less variance than y-bar."""
        x = [a for a, _ in pairs]
        y = [b for _, b in pairs]
        fit = linear_regression(x, y)
        mean_prediction = [sum(y) / len(y)] * len(y)
        assert fit.r_squared >= r_squared(y, mean_prediction) - 1e-12
