"""Tests for repro.topology.network."""

import pytest

from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_miles
from repro.topology.network import Link, Network, NetworkTier, PoP

NYC = GeoPoint(40.71, -74.01)
BOSTON = GeoPoint(42.36, -71.06)
DC = GeoPoint(38.91, -77.04)


def small_network() -> Network:
    net = Network("test", tier=NetworkTier.TIER1)
    net.add_pop(PoP("test:nyc", "New York, NY", NYC))
    net.add_pop(PoP("test:bos", "Boston, MA", BOSTON))
    net.add_pop(PoP("test:dc", "Washington, DC", DC))
    net.add_link("test:nyc", "test:bos")
    net.add_link("test:nyc", "test:dc")
    return net


class TestPoP:
    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            PoP("", "X", NYC)


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", 1.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", -1.0)

    def test_endpoints_canonical(self):
        assert Link("z", "a", 1.0).endpoints == ("a", "z")


class TestNetworkConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Network("")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            Network("x", tier="tier9")

    def test_duplicate_pop_rejected(self):
        net = small_network()
        with pytest.raises(ValueError):
            net.add_pop(PoP("test:nyc", "New York, NY", NYC))

    def test_link_unknown_pop_rejected(self):
        net = small_network()
        with pytest.raises(KeyError):
            net.add_link("test:nyc", "test:ghost")

    def test_duplicate_link_rejected(self):
        net = small_network()
        with pytest.raises(ValueError):
            net.add_link("test:bos", "test:nyc")

    def test_link_length_is_great_circle(self):
        net = small_network()
        link = [l for l in net.links() if "bos" in l.pop_b or "bos" in l.pop_a][0]
        assert link.length_miles == pytest.approx(
            haversine_miles(NYC, BOSTON), rel=1e-9
        )

    def test_remove_link(self):
        net = small_network()
        net.remove_link("test:bos", "test:nyc")
        assert not net.has_link("test:nyc", "test:bos")
        with pytest.raises(KeyError):
            net.remove_link("test:nyc", "test:bos")


class TestNetworkQueries:
    def test_counts(self):
        net = small_network()
        assert net.pop_count == 3
        assert net.link_count == 2

    def test_pop_lookup(self):
        net = small_network()
        assert net.pop("test:nyc").city == "New York, NY"
        with pytest.raises(KeyError):
            net.pop("test:ghost")

    def test_has_pop(self):
        net = small_network()
        assert net.has_pop("test:dc")
        assert not net.has_pop("test:ghost")

    def test_locations_order(self):
        assert small_network().locations() == [NYC, BOSTON, DC]

    def test_average_outdegree(self):
        assert small_network().average_outdegree() == pytest.approx(4.0 / 3.0)

    def test_footprint(self):
        net = small_network()
        assert net.geographic_footprint_miles() == pytest.approx(
            haversine_miles(BOSTON, DC), rel=1e-9
        )

    def test_total_link_miles(self):
        net = small_network()
        expected = haversine_miles(NYC, BOSTON) + haversine_miles(NYC, DC)
        assert net.total_link_miles() == pytest.approx(expected)


class TestDerivedStructure:
    def test_distance_graph(self):
        graph = small_network().distance_graph()
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.weight("test:nyc", "test:bos") == pytest.approx(
            haversine_miles(NYC, BOSTON)
        )

    def test_is_connected(self):
        net = small_network()
        assert net.is_connected()
        net.remove_link("test:nyc", "test:dc")
        assert not net.is_connected()

    def test_copy_independent(self):
        net = small_network()
        clone = net.copy()
        clone.remove_link("test:nyc", "test:dc")
        assert net.has_link("test:nyc", "test:dc")

    def test_copy_rename(self):
        assert small_network().copy(name="other").name == "other"

    def test_repr(self):
        assert "pops=3" in repr(small_network())
