"""Tests for repro.core.backup — Section 3.1 deployment hooks."""

import pytest

from repro.core.backup import (
    frr_backup_next_hops,
    mpls_link_failover,
    mpls_node_failover,
)
from repro.core.riskroute import RiskRouter


@pytest.fixture
def router(diamond_network, diamond_model):
    return RiskRouter(diamond_network.distance_graph(), diamond_model)


class TestMplsLinkFailover:
    def test_failover_avoids_link(self, router):
        primary = router.risk_route("diamond:west", "diamond:east")
        first_link = (primary.path[0], primary.path[1])
        backup = mpls_link_failover(
            router, "diamond:west", "diamond:east", first_link
        )
        assert backup is not None
        backup_edges = {
            frozenset(e) for e in zip(backup.path, backup.path[1:])
        }
        assert frozenset(first_link) not in backup_edges

    def test_none_when_bridge(self, diamond_network, diamond_model):
        net = diamond_network.copy()
        net.remove_link("diamond:west", "diamond:south")
        router = RiskRouter(net.distance_graph(), diamond_model)
        backup = mpls_link_failover(
            router,
            "diamond:west",
            "diamond:north",
            ("diamond:west", "diamond:north"),
        )
        # west now reaches north only via ... actually south link removed,
        # west-north removed too => west is isolated.
        assert backup is None


class TestMplsNodeFailover:
    def test_failover_avoids_node(self, router):
        backup = mpls_node_failover(
            router, "diamond:west", "diamond:east", "diamond:north"
        )
        assert backup is not None
        assert "diamond:north" not in backup.path
        assert backup.path[0] == "diamond:west"
        assert backup.path[-1] == "diamond:east"

    def test_endpoint_failure_rejected(self, router):
        with pytest.raises(ValueError):
            mpls_node_failover(
                router, "diamond:west", "diamond:east", "diamond:west"
            )

    def test_none_when_disconnecting(self, diamond_network, diamond_model):
        net = diamond_network.copy()
        net.remove_link("diamond:west", "diamond:south")
        router = RiskRouter(net.distance_graph(), diamond_model)
        backup = mpls_node_failover(
            router, "diamond:west", "diamond:east", "diamond:north"
        )
        assert backup is None


class TestFrrTable:
    def test_table_covers_all_destinations(self, router):
        table = frr_backup_next_hops(router, "diamond:west")
        assert set(table) == {"diamond:north", "diamond:south", "diamond:east"}

    def test_backup_next_hop_differs_from_primary(self, router):
        table = frr_backup_next_hops(router, "diamond:west")
        primaries = router.risk_routes_from("diamond:west", exact=False)
        for target, backup_hop in table.items():
            if backup_hop is None:
                continue
            assert backup_hop != primaries[target].path[1]

    def test_no_alternative_marked_none(self, diamond_network, diamond_model):
        net = diamond_network.copy()
        net.remove_link("diamond:west", "diamond:south")
        router = RiskRouter(net.distance_graph(), diamond_model)
        table = frr_backup_next_hops(router, "diamond:west")
        # Only the north link leaves west: every backup is None.
        assert all(v is None for v in table.values())
