"""Tests for repro.forecast.advisory and repro.forecast.parser — the
advisory text round trip at the heart of Section 4.4/5.3."""

from datetime import datetime

import pytest

from repro.forecast.advisory import (
    Advisory,
    advisory_text,
    compass_name,
)
from repro.forecast.parser import (
    AdvisoryParseError,
    parse_advisory_text,
)
from repro.geo.coords import GeoPoint


def make_advisory(**overrides) -> Advisory:
    defaults = dict(
        storm_name="Irene",
        number=33,
        time=datetime(2011, 8, 26, 11, 0),
        center=GeoPoint(35.2, -76.4),
        max_wind_mph=100.0,
        hurricane_radius_miles=90.0,
        tropical_radius_miles=260.0,
        motion_bearing_degrees=22.5,
        motion_speed_mph=15.0,
    )
    defaults.update(overrides)
    return Advisory(**defaults)


class TestAdvisory:
    def test_number_validation(self):
        with pytest.raises(ValueError):
            make_advisory(number=0)

    def test_radii_validation(self):
        with pytest.raises(ValueError):
            make_advisory(hurricane_radius_miles=300.0)

    def test_storm_class(self):
        assert make_advisory().storm_class == "HURRICANE"
        assert make_advisory(max_wind_mph=60.0).storm_class == "TROPICAL STORM"


class TestCompass:
    def test_cardinal_points(self):
        assert compass_name(0.0) == "NORTH"
        assert compass_name(90.0) == "EAST"
        assert compass_name(180.0) == "SOUTH"
        assert compass_name(270.0) == "WEST"

    def test_intermediate(self):
        assert compass_name(22.5) == "NORTH-NORTHEAST"

    def test_wraparound(self):
        assert compass_name(359.9) == "NORTH"
        assert compass_name(-90.0) == "WEST"


class TestTextGeneration:
    def test_contains_paper_phrases(self):
        text = advisory_text(make_advisory())
        assert "THE CENTER OF HURRICANE IRENE WAS LOCATED NEAR" in text
        assert "LATITUDE 35.2 NORTH" in text
        assert "LONGITUDE 76.4 WEST" in text
        assert "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES" in text
        assert "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES" in text
        assert "MOVING TOWARD THE NORTH-NORTHEAST NEAR 15 MPH" in text

    def test_header(self):
        text = advisory_text(make_advisory())
        assert "ADVISORY NUMBER 33" in text

    def test_tropical_storm_no_hurricane_sentence(self):
        advisory = make_advisory(
            max_wind_mph=50.0, hurricane_radius_miles=0.0
        )
        text = advisory_text(advisory)
        assert "HURRICANE-FORCE WINDS" not in text
        assert "TROPICAL-STORM-FORCE WINDS" in text

    def test_km_conversion_present(self):
        text = advisory_text(make_advisory())
        assert "145 KM" in text  # 90 miles ~ 145 km


class TestParser:
    def test_round_trip(self):
        advisory = make_advisory()
        parsed = parse_advisory_text(advisory_text(advisory))
        assert parsed.center.lat == pytest.approx(35.2)
        assert parsed.center.lon == pytest.approx(-76.4)
        assert parsed.hurricane_radius_miles == 90.0
        assert parsed.tropical_radius_miles == 260.0
        assert parsed.storm_name == "IRENE"
        assert parsed.advisory_number == 33
        assert parsed.motion_speed_mph == 15.0
        assert parsed.motion_direction == "NORTH-NORTHEAST"
        assert parsed.max_wind_mph == 100.0

    def test_parses_paper_excerpt(self):
        excerpt = (
            "...THE CENTER OF HURRICANE IRENE WAS LOCATED NEAR LATITUDE "
            "35.2 NORTH...LONGITUDE 76.4 WEST. IRENE IS MOVING TOWARD THE "
            "NORTH-NORTHEAST NEAR 15 MPH...HURRICANE-FORCE WINDS EXTEND "
            "OUTWARD UP TO 90 MILES...150 KM...FROM THE CENTER...AND "
            "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES..."
            "415 KM..."
        )
        parsed = parse_advisory_text(excerpt)
        assert parsed.center == GeoPoint(35.2, -76.4)
        assert parsed.hurricane_radius_miles == 90.0
        assert parsed.tropical_radius_miles == 260.0

    def test_missing_center(self):
        with pytest.raises(AdvisoryParseError):
            parse_advisory_text("TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES")

    def test_missing_tropical_radius(self):
        with pytest.raises(AdvisoryParseError):
            parse_advisory_text(
                "THE CENTER WAS LOCATED NEAR LATITUDE 30.0 NORTH..."
                "LONGITUDE 80.0 WEST."
            )

    def test_empty_text(self):
        with pytest.raises(AdvisoryParseError):
            parse_advisory_text("   ")

    def test_no_hurricane_radius_defaults_zero(self):
        text = (
            "LATITUDE 30.0 NORTH...LONGITUDE 80.0 WEST. "
            "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 120 MILES..."
        )
        parsed = parse_advisory_text(text)
        assert parsed.hurricane_radius_miles == 0.0

    def test_inconsistent_radii_rejected(self):
        text = (
            "LATITUDE 30.0 NORTH...LONGITUDE 80.0 WEST. "
            "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 300 MILES... "
            "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 120 MILES..."
        )
        with pytest.raises(AdvisoryParseError):
            parse_advisory_text(text)

    def test_southern_eastern_hemispheres(self):
        text = (
            "LATITUDE 10.0 SOUTH...LONGITUDE 120.0 EAST. "
            "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 80 MILES..."
        )
        parsed = parse_advisory_text(text)
        assert parsed.center == GeoPoint(-10.0, 120.0)

    def test_lowercase_input_tolerated(self):
        text = (
            "latitude 30.0 north...longitude 80.0 west. "
            "tropical-storm-force winds extend outward up to 120 miles..."
        )
        assert parse_advisory_text(text).tropical_radius_miles == 120.0
