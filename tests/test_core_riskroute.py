"""Tests for repro.core.riskroute — Equation 3."""

import pytest

from repro.core.riskroute import RiskRouter
from repro.graph.shortest_path import NoPathError
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture
def router(diamond_network, diamond_model):
    return RiskRouter(diamond_network.distance_graph(), diamond_model)


class TestShortestPath:
    def test_baseline_route(self, router):
        route = router.shortest_path("diamond:west", "diamond:east")
        assert route.path[0] == "diamond:west"
        assert route.path[-1] == "diamond:east"
        assert len(route.path) == 3

    def test_metrics_populated(self, router):
        route = router.shortest_path("diamond:west", "diamond:east")
        assert route.bit_miles > 0
        assert route.bit_risk_miles >= route.bit_miles


class TestRiskRoute:
    def test_avoids_risky_transit(self, router):
        route = router.risk_route("diamond:west", "diamond:east")
        assert "diamond:south" not in route.path
        assert "diamond:north" in route.path

    def test_risk_route_never_worse_in_bit_risk(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert (
            pair.riskroute.bit_risk_miles
            <= pair.shortest.bit_risk_miles + 1e-9
        )

    def test_shortest_never_worse_in_miles(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert pair.shortest.bit_miles <= pair.riskroute.bit_miles + 1e-9

    def test_zero_gamma_equals_shortest(self, diamond_network):
        model = build_diamond_model(gamma_h=0.0, gamma_f=0.0)
        router = RiskRouter(diamond_network.distance_graph(), model)
        pair = router.route_pair("diamond:west", "diamond:east")
        assert pair.riskroute.bit_miles == pytest.approx(
            pair.shortest.bit_miles
        )

    def test_target_risk_unavoidable(self, diamond_network):
        """Adjacent pair: the only lever is transit risk; target risk is
        always charged."""
        model = build_diamond_model()
        router = RiskRouter(diamond_network.distance_graph(), model)
        route = router.risk_route("diamond:west", "diamond:south")
        # Direct link is optimal: detours add risk without removing the
        # target charge.
        assert route.path == ("diamond:west", "diamond:south")

    def test_disconnected_raises(self, diamond_network, diamond_model):
        graph = diamond_network.distance_graph()
        graph.add_node("island")
        model = diamond_model  # island not in the model
        with pytest.raises(Exception):
            RiskRouter(graph, model)

    def test_pair_ratios(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert 0.0 < pair.risk_ratio <= 1.0
        assert pair.distance_ratio >= 1.0


class TestSweeps:
    def test_shortest_from_covers_all(self, router):
        routes = router.shortest_from("diamond:west")
        assert set(routes) == {"diamond:north", "diamond:south", "diamond:east"}

    def test_exact_sweep_matches_single_pair(self, router):
        sweep = router.risk_routes_from("diamond:west", exact=True)
        single = router.risk_route("diamond:west", "diamond:east")
        assert sweep["diamond:east"].path == single.path

    def test_approx_sweep_costs_are_exact_for_chosen_paths(self, router):
        from repro.core.bitrisk import path_metrics

        sweep = router.approx_risk_routes_from("diamond:west")
        for target, route in sweep.items():
            recomputed = path_metrics(router.graph, list(route.path), router.model)
            assert route.bit_risk_miles == pytest.approx(
                recomputed.bit_risk_miles
            )

    def test_approx_close_to_exact_on_diamond(self, router):
        exact = router.risk_routes_from("diamond:west", exact=True)
        approx = router.risk_routes_from("diamond:west", exact=False)
        for target in exact:
            assert approx[target].bit_risk_miles <= exact[
                target
            ].bit_risk_miles * 1.10


class TestIntegrationCorpus:
    def test_teliasonera_route(self, teliasonera, teliasonera_model):
        router = RiskRouter(teliasonera.distance_graph(), teliasonera_model)
        pair = router.route_pair(
            "Teliasonera:Miami, FL", "Teliasonera:Seattle, WA"
        )
        assert pair.riskroute.bit_risk_miles <= pair.shortest.bit_risk_miles
        assert pair.shortest.bit_miles <= pair.riskroute.bit_miles
