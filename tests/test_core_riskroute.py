"""Tests for repro.core.riskroute — Equation 3."""

import warnings

import pytest

from repro.core.riskroute import RiskRouter, _risk_dijkstra
from repro.core.strategy import SweepStrategy
from repro.graph.core import NodeNotFoundError
from repro.graph.shortest_path import NoPathError
from tests.conftest import build_diamond_model, build_diamond_network


@pytest.fixture
def router(diamond_network, diamond_model):
    return RiskRouter(diamond_network.distance_graph(), diamond_model)


class TestShortestPath:
    def test_baseline_route(self, router):
        route = router.shortest_path("diamond:west", "diamond:east")
        assert route.path[0] == "diamond:west"
        assert route.path[-1] == "diamond:east"
        assert len(route.path) == 3

    def test_metrics_populated(self, router):
        route = router.shortest_path("diamond:west", "diamond:east")
        assert route.bit_miles > 0
        assert route.bit_risk_miles >= route.bit_miles


class TestRiskRoute:
    def test_avoids_risky_transit(self, router):
        route = router.risk_route("diamond:west", "diamond:east")
        assert "diamond:south" not in route.path
        assert "diamond:north" in route.path

    def test_risk_route_never_worse_in_bit_risk(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert (
            pair.riskroute.bit_risk_miles
            <= pair.shortest.bit_risk_miles + 1e-9
        )

    def test_shortest_never_worse_in_miles(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert pair.shortest.bit_miles <= pair.riskroute.bit_miles + 1e-9

    def test_zero_gamma_equals_shortest(self, diamond_network):
        model = build_diamond_model(gamma_h=0.0, gamma_f=0.0)
        router = RiskRouter(diamond_network.distance_graph(), model)
        pair = router.route_pair("diamond:west", "diamond:east")
        assert pair.riskroute.bit_miles == pytest.approx(
            pair.shortest.bit_miles
        )

    def test_target_risk_unavoidable(self, diamond_network):
        """Adjacent pair: the only lever is transit risk; target risk is
        always charged."""
        model = build_diamond_model()
        router = RiskRouter(diamond_network.distance_graph(), model)
        route = router.risk_route("diamond:west", "diamond:south")
        # Direct link is optimal: detours add risk without removing the
        # target charge.
        assert route.path == ("diamond:west", "diamond:south")

    def test_disconnected_raises(self, diamond_network, diamond_model):
        graph = diamond_network.distance_graph()
        graph.add_node("island")
        model = diamond_model  # island not in the model
        with pytest.raises(Exception):
            RiskRouter(graph, model)

    def test_pair_ratios(self, router):
        pair = router.route_pair("diamond:west", "diamond:east")
        assert 0.0 < pair.risk_ratio <= 1.0
        assert pair.distance_ratio >= 1.0


class TestSweeps:
    def test_shortest_from_covers_all(self, router):
        routes = router.shortest_from("diamond:west")
        assert set(routes) == {"diamond:north", "diamond:south", "diamond:east"}

    def test_exact_sweep_matches_single_pair(self, router):
        sweep = router.risk_routes_from("diamond:west", exact=True)
        single = router.risk_route("diamond:west", "diamond:east")
        assert sweep["diamond:east"].path == single.path

    def test_approx_sweep_costs_are_exact_for_chosen_paths(self, router):
        from repro.core.bitrisk import path_metrics

        sweep = router.approx_risk_routes_from("diamond:west")
        for target, route in sweep.items():
            recomputed = path_metrics(router.graph, list(route.path), router.model)
            assert route.bit_risk_miles == pytest.approx(
                recomputed.bit_risk_miles
            )

    def test_approx_close_to_exact_on_diamond(self, router):
        exact = router.risk_routes_from("diamond:west", exact=True)
        approx = router.risk_routes_from("diamond:west", exact=False)
        for target in exact:
            assert approx[target].bit_risk_miles <= exact[
                target
            ].bit_risk_miles * 1.10


class TestRiskDijkstraCoverage:
    def test_missing_risk_raises_node_not_found(self, diamond_network):
        """A risk mapping that misses a reachable node must fail with a
        clear NodeNotFoundError, not a bare KeyError."""
        graph = diamond_network.distance_graph()
        node_risk = {n: 1e-3 for n in graph.nodes()}
        del node_risk["diamond:south"]
        with pytest.raises(NodeNotFoundError, match="diamond:south"):
            _risk_dijkstra(graph, node_risk, 0.5, "diamond:west")

    def test_full_coverage_still_works(self, diamond_network):
        graph = diamond_network.distance_graph()
        node_risk = {n: 1e-3 for n in graph.nodes()}
        dist, parent = _risk_dijkstra(graph, node_risk, 0.5, "diamond:west")
        assert set(dist) == set(graph.nodes())


class TestStrategyShim:
    """risk_routes_from: strategy= is the API, exact= the deprecated shim."""

    def test_exact_kwarg_warns(self, router):
        with pytest.warns(DeprecationWarning, match="strategy"):
            router.risk_routes_from("diamond:west", exact=True)

    def test_positional_bool_warns(self, router):
        with pytest.warns(DeprecationWarning):
            routes = router.risk_routes_from("diamond:west", False)
        assert set(routes) == {
            "diamond:north", "diamond:south", "diamond:east"
        }

    def test_shim_matches_strategy(self, router):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = router.risk_routes_from("diamond:west", exact=False)
        modern = router.risk_routes_from("diamond:west", strategy="per-source")
        assert legacy == modern

    def test_enum_accepted(self, router):
        routes = router.risk_routes_from(
            "diamond:west", strategy=SweepStrategy.EXACT
        )
        single = router.risk_route("diamond:west", "diamond:east")
        assert routes["diamond:east"].path == single.path

    def test_both_given_raises(self, router):
        with pytest.raises(ValueError):
            router.risk_routes_from(
                "diamond:west", strategy="exact", exact=True
            )

    def test_unknown_strategy_raises(self, router):
        with pytest.raises(ValueError):
            router.risk_routes_from("diamond:west", strategy="bogus")


class TestIntegrationCorpus:
    def test_teliasonera_route(self, teliasonera, teliasonera_model):
        router = RiskRouter(teliasonera.distance_graph(), teliasonera_model)
        pair = router.route_pair(
            "Teliasonera:Miami, FL", "Teliasonera:Seattle, WA"
        )
        assert pair.riskroute.bit_risk_miles <= pair.shortest.bit_risk_miles
        assert pair.shortest.bit_miles <= pair.riskroute.bit_miles
